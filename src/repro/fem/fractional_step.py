"""Incremental pressure-correction (fractional-step) Navier-Stokes solver.

The paper's fluid problem (Eqs. 1-2): incompressible Navier-Stokes for the
airflow.  Alya uses a stabilized FE discretization with split momentum /
continuity solves — the "Solver1"/"Solver2" phases.  This module implements
the classic Chorin-Temam incremental projection on our meshes:

1. **momentum predictor** (Solver1): with A = M/dt + C(u^n) + nu K,

       A u* = M/dt u^n - G p^n        (+ Dirichlet velocity BCs)

2. **pressure Poisson** (Solver2):

       L phi = (1/dt) D u*            (phi pinned at the outlet)

3. **projection / update**:

       u^{n+1} = u* - dt M_L^{-1} G phi,     p^{n+1} = p^n + phi

with lumped mass M_L.  Velocity carries 3 interleaved DOF per node
(:mod:`repro.fem.vector`).

Performance (PR 8): the per-step *setup* work — vector expansion of the
momentum operator, Dirichlet row replacement, Jacobi rebuild — is recycled
behind the ``fluid_operator_recycle`` toggle: the expansion permutation and
Dirichlet slot maps are computed once at construction and each step reduces
to one gather of the freshly assembled scalar CSR data (bit-identical by
construction, self-checked at init).  The continuity solve can optionally
use Alya-style deflated CG (``pressure_solver="deflated"``) whose
:class:`~repro.solver.deflated.DeflationSetup` is paid once in ``__init__``
under the ``deflation_setup_cache`` toggle.

This is the *numeric* fluid path; the tube-flow test in
``tests/test_fluid.py`` drives it end-to-end (inflow/outflow balance,
divergence reduction by the projection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from ..mesh.mesh import Mesh
from ..perf import toggles as _perf_toggles
from ..solver import bicgstab, cg, deflated_cg, jacobi_preconditioner
from ..solver.deflated import DeflationSetup
from .assembly import assemble_operator
from .dirichlet import DirichletSlots, apply_dirichlet, \
    apply_dirichlet_symmetric
from .vector import (
    deinterleave,
    divergence_operator,
    gradient_operator,
    interleave,
    vector_expansion_perm,
    vector_operator,
)

__all__ = ["FLUID_COUNTERS", "FlowBC", "FractionalStepSolver", "StepInfo"]

#: running totals of the fluid fast paths (momentum matrices recycled vs
#: rebuilt from scratch, deflated continuity solves, deflation setups
#: built/reused); surfaced by :func:`repro.perf.instrument.fluid_counters`
FLUID_COUNTERS = {
    "momentum_recycled": 0,
    "momentum_rebuilt": 0,
    "pressure_deflated_solves": 0,
    "deflation_setups_built": 0,
    "deflation_setups_reused": 0,
}


@dataclass(frozen=True)
class FlowBC:
    """Velocity boundary conditions.

    Attributes
    ----------
    inlet_nodes / inlet_velocity:
        Nodes with prescribed velocity, (k,) ids and (k, 3) values.
    wall_nodes:
        No-slip nodes (velocity zero).
    outlet_nodes:
        Nodes where the pressure increment is pinned to zero (free
        outflow).
    """

    inlet_nodes: np.ndarray
    inlet_velocity: np.ndarray
    wall_nodes: np.ndarray
    outlet_nodes: np.ndarray

    def __post_init__(self):
        if self.inlet_velocity.shape != (len(self.inlet_nodes), 3):
            raise ValueError("inlet_velocity must be (len(inlet_nodes), 3)")
        if len(self.outlet_nodes) == 0:
            raise ValueError("need at least one outlet node to pin pressure")


@dataclass
class StepInfo:
    """Diagnostics of one fractional step."""

    momentum_iterations: int
    pressure_iterations: int
    div_before: float
    div_after: float


class FractionalStepSolver:
    """Chorin-Temam incremental projection on a mesh with velocity BCs.

    Parameters
    ----------
    mesh, bc, viscosity, density, dt:
        The discrete problem.  The mesh is assumed static for the solver's
        lifetime (the same contract as the assembly pattern cache).
    pressure_solver:
        ``"cg"`` (default) solves the pressure Poisson system with plain
        preconditioned CG; ``"deflated"`` uses Alya-style deflated CG with
        a subdomain coarse space (one group per RCB part).
    pressure_groups:
        Optional explicit (nnodes,) coarse-group assignment for the
        deflated solver; defaults to ``rcb_partition(mesh.coords,
        n_coarse)``.
    n_coarse:
        Number of RCB parts for the default coarse space.

    The ``fluid_operator_recycle`` and ``deflation_setup_cache`` toggles
    are captured at construction (long-lived-object capture semantics of
    :mod:`repro.perf.toggles`).
    """

    def __init__(self, mesh: Mesh, bc: FlowBC, viscosity: float = 1.9e-5,
                 density: float = 1.15, dt: float = 1e-3,
                 pressure_solver: str = "cg",
                 pressure_groups: Optional[np.ndarray] = None,
                 n_coarse: int = 16):
        if pressure_solver not in ("cg", "deflated"):
            raise ValueError("pressure_solver must be 'cg' or 'deflated', "
                             f"got {pressure_solver!r}")
        self.mesh = mesh
        self.bc = bc
        self.viscosity = viscosity
        self.density = density
        self.dt = dt
        n = mesh.nnodes
        self.u = np.zeros((n, 3))
        self.p = np.zeros(n)
        # constant operators
        self.M = assemble_operator(mesh, kappa=0.0, mass_coeff=1.0).matrix
        self.G = gradient_operator(mesh)                   # (3n, n) = D^T
        self.D = divergence_operator(mesh)                 # (n, 3n)
        self._lumped = np.asarray(self.M.sum(axis=1)).ravel()
        self._inv_lumped3 = 1.0 / np.repeat(self._lumped, 3)
        # consistent pressure operator: L = D M_L^{-1} D^T (SPD once pinned),
        # which makes the projection *exactly* kill the discrete divergence.
        Minv3 = sparse.diags(self._inv_lumped3)
        L = (self.D @ Minv3 @ self.G).tocsr()
        self._L, _ = apply_dirichlet_symmetric(
            L, np.zeros(n), bc.outlet_nodes,
            np.zeros(len(bc.outlet_nodes)))
        self._L_pre = jacobi_preconditioner(self._L)
        # velocity Dirichlet DOFs
        vel_nodes = np.concatenate([bc.inlet_nodes, bc.wall_nodes])
        vel_values = np.concatenate(
            [bc.inlet_velocity, np.zeros((len(bc.wall_nodes), 3))])
        self._vel_dofs = (3 * np.repeat(vel_nodes, 3)
                          + np.tile([0, 1, 2], len(vel_nodes)))
        self._vel_values = vel_values.reshape(-1)
        # seed the prescribed values into the initial field
        self.u[vel_nodes] = vel_values
        # fast paths (toggle state captured at construction)
        toggles = _perf_toggles.TOGGLES
        self._slots: Optional[DirichletSlots] = None
        if toggles.fluid_operator_recycle:
            self._build_recycler()
        self.pressure_solver = pressure_solver
        self._pressure_groups: Optional[np.ndarray] = None
        self._defl_setup: Optional[DeflationSetup] = None
        if pressure_solver == "deflated":
            if pressure_groups is not None:
                self._pressure_groups = np.asarray(pressure_groups)
            else:
                from ..partition import rcb_partition
                self._pressure_groups = rcb_partition(mesh.coords, n_coarse)
            if toggles.deflation_setup_cache:
                self._defl_setup = DeflationSetup(self._L,
                                                  self._pressure_groups)
                FLUID_COUNTERS["deflation_setups_built"] += 1

    # -- operator recycling --------------------------------------------------
    def _build_recycler(self) -> None:
        """Precompute the momentum-operator recycling maps (one-time cost).

        Assembles the scalar momentum operator once to fix its sparsity
        pattern, derives the vector-expansion permutation and the Dirichlet
        slot maps, composes them into a single scalar-data -> constrained-
        vector-data gather, and self-checks the whole chain bit-for-bit
        against the naive ``vector_operator`` + ``apply_dirichlet`` path.
        """
        mesh, n = self.mesh, self.mesh.nnodes
        scalar = assemble_operator(mesh, kappa=self.viscosity,
                                   mass_coeff=self.density / self.dt,
                                   velocity=self.u).matrix
        self._scalar_nnz = scalar.nnz
        perm, vind, vptr = vector_expansion_perm(scalar, n)
        pattern = sparse.csr_matrix(
            (np.zeros(len(perm)), vind, vptr), shape=(3 * n, 3 * n))
        slots = DirichletSlots(pattern, self._vel_dofs, self._vel_values)
        # one composed gather: constrained vector slot <- scalar slot
        gather = perm[slots.src]
        # self-check against the naive path (init-only cost): same scalar
        # data pushed through both routes must agree bit-for-bit
        data = np.empty(slots.nnz)
        data[slots.dst] = scalar.data[gather]
        data[slots.fixed] = 1.0
        naive = vector_operator(mesh, kappa=self.viscosity,
                                mass_coeff=self.density / self.dt,
                                velocity=self.u)
        naive, _ = apply_dirichlet(naive, np.zeros(3 * n), self._vel_dofs,
                                   self._vel_values)
        if not (np.array_equal(naive.indptr, slots.indptr)
                and np.array_equal(naive.indices, slots.indices)
                and np.array_equal(naive.data, data)):
            raise RuntimeError(
                "momentum operator recycling self-check failed: recycled "
                "matrix differs from the naive path")
        self._slots = slots
        self._gather = gather

    def _momentum_system(self, rhs: np.ndarray):
        """Constrained momentum matrix + RHS + Jacobi preconditioner.

        The recycled path assembles only the *scalar* operator (itself
        incremental under ``operator_split``) and gathers its data straight
        into the constrained vector pattern; the naive path re-runs the COO
        expansion and the LIL row replacement.  Both produce bit-identical
        systems, so the returned solver inputs — and everything downstream
        — match exactly.
        """
        mesh = self.mesh
        nu, rho, dt = self.viscosity, self.density, self.dt
        if self._slots is not None:
            scalar = assemble_operator(mesh, kappa=nu, mass_coeff=rho / dt,
                                       velocity=self.u).matrix
            if scalar.nnz != self._scalar_nnz:
                raise ValueError(
                    "momentum recycling pattern is stale: the mesh changed "
                    "after solver construction")
            data = np.empty(self._slots.nnz)
            data[self._slots.dst] = scalar.data[self._gather]
            data[self._slots.fixed] = 1.0
            A = self._slots.matrix(data)
            rhs[self._vel_dofs] = self._vel_values
            if self._slots.diag_slots is not None:
                # O(n) Jacobi refresh from the diagonal slot view —
                # identical values to jacobi_preconditioner(A)
                diag = data[self._slots.diag_slots].copy()
                diag[np.abs(diag) < 1e-300] = 1.0
                inv = 1.0 / diag

                def pre(r: np.ndarray) -> np.ndarray:
                    return inv * r
            else:  # pragma: no cover - momentum diagonal always stored
                pre = jacobi_preconditioner(A)
            FLUID_COUNTERS["momentum_recycled"] += 1
            return A, rhs, pre
        A = vector_operator(mesh, kappa=nu, mass_coeff=rho / dt,
                            velocity=self.u)
        A, rhs = apply_dirichlet(A, rhs, self._vel_dofs, self._vel_values)
        FLUID_COUNTERS["momentum_rebuilt"] += 1
        return A, rhs, jacobi_preconditioner(A)

    # -- one time step ------------------------------------------------------
    def step(self, tol: float = 1e-7, maxiter: int = 600) -> StepInfo:
        """Advance one dt; returns solver/divergence diagnostics."""
        dt = self.dt
        rho = self.density
        # 1. momentum predictor.  The weak pressure-gradient term is
        #    (grad p, v) = -(p, div v) = -(D^T p)_v, so it contributes
        #    +D^T p on the RHS once moved across.
        rhs = (rho / dt) * (self._mass3(interleave(self.u))) \
            + self.G @ self.p
        A, rhs, pre = self._momentum_system(rhs)
        res_m = bicgstab(A, rhs, x0=interleave(self.u), tol=tol,
                         maxiter=maxiter, M=pre)
        u_star = res_m.x
        # 2. pressure Poisson for the increment phi:
        #    u^{n+1} = u* + dt/rho M_L^{-1} D^T phi  and  D u^{n+1} = 0
        #    =>  (D M_L^{-1} D^T) phi = -(rho/dt) D u*
        div_star = self.D @ u_star
        div_before = float(np.linalg.norm(div_star))
        b = -(rho / dt) * div_star
        b[self.bc.outlet_nodes] = 0.0
        if self.pressure_solver == "deflated":
            if self._defl_setup is not None:
                FLUID_COUNTERS["deflation_setups_reused"] += 1
            else:
                FLUID_COUNTERS["deflation_setups_built"] += 1
            res_p = deflated_cg(self._L, b, self._pressure_groups, tol=tol,
                                maxiter=maxiter, M=self._L_pre,
                                setup=self._defl_setup)
            FLUID_COUNTERS["pressure_deflated_solves"] += 1
        else:
            res_p = cg(self._L, b, tol=tol, maxiter=maxiter, M=self._L_pre)
        phi = res_p.x
        # 3. projection
        u_new = u_star + (dt / rho) * (self._inv_lumped3 * (self.G @ phi))
        # re-impose the velocity BCs exactly
        u_new[self._vel_dofs] = self._vel_values
        div_after = float(np.linalg.norm(self.D @ u_new))
        self.u = deinterleave(u_new)
        self.p = self.p + phi
        return StepInfo(momentum_iterations=res_m.iterations,
                        pressure_iterations=res_p.iterations,
                        div_before=div_before, div_after=div_after)

    def run(self, n_steps: int, tol: float = 1e-7) -> list[StepInfo]:
        """Advance ``n_steps`` steps; returns the per-step diagnostics."""
        return [self.step(tol=tol) for _ in range(n_steps)]

    # -- helpers ------------------------------------------------------------
    def _mass3(self, dofs: np.ndarray) -> np.ndarray:
        """Apply the (block-diagonal) vector mass matrix.

        One sparse matrix-matrix product on the (n, 3) field — bit-identical
        to the per-component matvec loop (CSR SpMM accumulates each column
        exactly like the corresponding matvec).
        """
        return interleave(self.M @ deinterleave(dofs))

    def flow_rate_through(self, nodes: np.ndarray,
                          normal: np.ndarray) -> float:
        """Approximate volumetric flow through a node set with unit
        ``normal``: mean normal velocity x (summed lumped nodal area).

        Used by tests to compare inflow and outflow (mass conservation).
        """
        u_n = self.u[nodes] @ normal
        weights = self._lumped[nodes]
        # lumped masses are volumes; normalize to act as area weights
        return float((u_n * weights).sum() / weights.sum())
