"""Vector-valued (3-DOF-per-node) finite-element operators.

The momentum equation of the incompressible Navier-Stokes system (paper
Eqs. 1-2) is vector-valued: velocity carries three degrees of freedom per
node.  This module assembles the vector counterparts of the scalar
operators in :mod:`repro.fem.assembly`:

* block-diagonal mass / convection / diffusion (each velocity component
  sees the same scalar stencil — the Laplacian form of the viscous term),
* the discrete **gradient** (n_p x 3n_u) and **divergence** operators
  coupling velocity and pressure, needed by the fractional-step scheme.

DOF layout: component-major interleaved — node ``i`` owns rows
``3 i + c`` for component ``c`` (the layout Alya uses for cache locality).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from ..mesh.elements import ElementType, NODES_PER_TYPE
from ..mesh.mesh import Mesh
from ..perf import toggles as _perf_toggles
from . import geometry as _geom
from .assembly import _geometry
from .shape import reference_element

__all__ = ["vector_operator", "vector_expansion_perm", "gradient_operator",
           "divergence_operator", "interleave", "deinterleave"]


def interleave(field: np.ndarray) -> np.ndarray:
    """(n, 3) nodal field -> (3n,) interleaved DOF vector."""
    field = np.asarray(field)
    if field.ndim != 2 or field.shape[1] != 3:
        raise ValueError(f"field must be (n, 3), got {field.shape}")
    return field.reshape(-1)


def deinterleave(dofs: np.ndarray) -> np.ndarray:
    """(3n,) interleaved DOF vector -> (n, 3) nodal field."""
    dofs = np.asarray(dofs)
    if dofs.ndim != 1 or dofs.shape[0] % 3:
        raise ValueError(f"dofs must be (3n,), got {dofs.shape}")
    return dofs.reshape(-1, 3)


def vector_operator(mesh: Mesh, kappa: float = 0.0, mass_coeff: float = 0.0,
                    velocity: Optional[np.ndarray] = None,
                    stabilize: bool = True) -> sparse.csr_matrix:
    """Assemble ``mass_coeff*M + C(velocity) + kappa*K`` with 3 DOF/node.

    Component-block-diagonal: the scalar element matrix is replicated on
    each velocity component (Laplacian viscous form; no cross-component
    coupling).  Returns a (3n x 3n) CSR matrix in interleaved layout.
    """
    from .assembly import assemble_operator

    scalar = assemble_operator(mesh, kappa=kappa, mass_coeff=mass_coeff,
                               velocity=velocity,
                               stabilize=stabilize).matrix.tocoo()
    return _expand_to_vector(scalar, mesh.nnodes)


def _expand_to_vector(scalar: sparse.coo_matrix, n: int) -> sparse.csr_matrix:
    """Replicate a scalar (n x n) COO operator on 3 interleaved components."""
    rows, cols, vals = [], [], []
    for c in range(3):
        rows.append(3 * scalar.row + c)
        cols.append(3 * scalar.col + c)
        vals.append(scalar.data)
    return sparse.coo_matrix(
        (np.concatenate(vals),
         (np.concatenate(rows), np.concatenate(cols))),
        shape=(3 * n, 3 * n)).tocsr()


def vector_expansion_perm(scalar: sparse.csr_matrix, n: int
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather permutation turning scalar CSR data into vector CSR data.

    For a scalar operator with a fixed sparsity pattern, the block-diagonal
    vector expansion of :func:`vector_operator` is purely structural: entry
    ``k`` of the vector matrix's data is some fixed entry ``perm[k]`` of the
    scalar data.  This pushes marker data (each scalar slot's index) through
    the *same* COO expansion code, so the returned ``(perm, indices,
    indptr)`` reproduces ``vector_operator``'s output bit-identically via
    ``data = scalar.data[perm]`` — without re-running the COO round trip
    per call.  Valid for any scalar matrix on the same pattern (static-mesh
    contract, as for the assembly pattern cache).
    """
    marker = sparse.csr_matrix(
        (np.arange(1, scalar.nnz + 1, dtype=np.float64),
         scalar.indices, scalar.indptr), shape=scalar.shape)
    vec = _expand_to_vector(marker.tocoo(), n)
    perm = vec.data.astype(np.int64) - 1
    return perm, vec.indices, vec.indptr


def _build_coupling(mesh: Mesh, use_geom: bool) -> sparse.csr_matrix:
    """Assemble the (n x 3n) weak-gradient coupling matrix."""
    n = mesh.nnodes
    rows, cols, vals = [], [], []
    if use_geom:
        type_blocks = [(blk.etype, blk.conn, blk.grads, blk.dvol)
                       for blk in _geom.geometry_blocks(mesh)]
    else:
        type_blocks = []
        for etype in ElementType:
            ids = mesh.elements_of_type(etype)
            if len(ids) == 0:
                continue
            nn = NODES_PER_TYPE[etype]
            ref = reference_element(etype)
            conn = mesh.elem_nodes[ids][:, :nn]
            grads, dvol = _geometry(mesh.coords, conn, ref)
            type_blocks.append((etype, conn, grads, dvol))
    for etype, conn, grads, dvol in type_blocks:
        nn = NODES_PER_TYPE[etype]
        ref = reference_element(etype)
        # Ge[e, a, b, c] = sum_q N_a(q) dN_b/dx_c(q) w_q |J|
        Ge = np.einsum("qa,eqbc,eq->eabc", ref.N, grads, dvol)
        for a in range(nn):
            for b in range(nn):
                for c in range(3):
                    rows.append(conn[:, a])
                    cols.append(3 * conn[:, b] + c)
                    vals.append(Ge[:, a, b, c])
    return sparse.coo_matrix(
        (np.concatenate(vals),
         (np.concatenate(rows).astype(np.int64),
          np.concatenate(cols).astype(np.int64))),
        shape=(n, 3 * n)).tocsr()


def _pressure_velocity_coupling(mesh: Mesh) -> sparse.csr_matrix:
    """G[i, 3j+c] = integral N_i dN_j/dx_c dV  (the weak gradient).

    With the ``geometry_cache`` toggle the assembled matrix itself is
    cached per mesh (it is fully static), so the gradient and divergence
    operators of one solver setup share a single build.  Treat the returned
    matrix as read-only.
    """
    if _perf_toggles.TOGGLES.geometry_cache:
        def build():
            coupling = _build_coupling(mesh, use_geom=True)
            nbytes = (coupling.data.nbytes + coupling.indices.nbytes
                      + coupling.indptr.nbytes)
            return coupling, nbytes
        return _geom.cached_extra(mesh, "pv_coupling", build)
    return _build_coupling(mesh, use_geom=False)


def gradient_operator(mesh: Mesh) -> sparse.csr_matrix:
    """Discrete pressure gradient: (3n x n), maps pressure to momentum RHS.

    Weak form: (grad p, v) = -(p, div v) after integration by parts on the
    interior; here we use the direct form G^T with
    G[i, 3j+c] = integral N_i dN_j/dx_c.
    """
    return _pressure_velocity_coupling(mesh).T.tocsr()


def divergence_operator(mesh: Mesh) -> sparse.csr_matrix:
    """Discrete divergence: (n x 3n), D u ~ integral N_i div(u_h) dV."""
    return _pressure_velocity_coupling(mesh)
