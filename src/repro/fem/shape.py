"""Shape functions and quadrature rules for tet / pyramid / prism elements.

Linear (P1-style) isoparametric elements:

* **TET** — barycentric linear shape functions on the reference tet
  (0,0,0)-(1,0,0)-(0,1,0)-(0,0,1); 4-point quadrature.
* **PRISM** — triangle x line tensor product on the reference wedge
  (triangle in (x,y), z in [-1,1]); 3x2 quadrature.
* **PYRAMID** — degenerate trilinear hexahedron (top face collapsed to the
  apex); 2x2x2 Gauss quadrature (all points interior, where the Jacobian is
  regular).

Each rule is exposed as ``(points, weights, N, dN)`` with ``N`` of shape
(nq, nn) and ``dN`` of shape (nq, nn, 3) — everything the vectorized
assembly needs, precomputed once per element type.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..mesh.elements import ElementType, NODES_PER_TYPE

__all__ = ["ReferenceElement", "reference_element"]

_G = 1.0 / np.sqrt(3.0)  # 2-point Gauss abscissa on [-1, 1]


@dataclass(frozen=True)
class ReferenceElement:
    """Precomputed reference-element data for one element type."""

    etype: ElementType
    points: np.ndarray    # (nq, 3) quadrature points (natural coords)
    weights: np.ndarray   # (nq,)
    N: np.ndarray         # (nq, nn) shape functions at the points
    dN: np.ndarray        # (nq, nn, 3) natural-coordinate gradients

    @property
    def nq(self) -> int:
        """Number of quadrature points."""
        return len(self.weights)

    @property
    def nn(self) -> int:
        """Number of nodes."""
        return NODES_PER_TYPE[self.etype]


def _tet() -> ReferenceElement:
    # 4-point rule, degree 2 exact; barycentric points
    a, b = 0.5854101966249685, 0.1381966011250105
    pts = np.array([[b, b, b], [a, b, b], [b, a, b], [b, b, a]])
    wts = np.full(4, 1.0 / 24.0)  # reference volume 1/6
    N = np.stack([1.0 - pts.sum(axis=1), pts[:, 0], pts[:, 1], pts[:, 2]],
                 axis=1)
    dN_single = np.array([[-1.0, -1.0, -1.0],
                          [1.0, 0.0, 0.0],
                          [0.0, 1.0, 0.0],
                          [0.0, 0.0, 1.0]])
    dN = np.broadcast_to(dN_single, (4, 4, 3)).copy()
    return ReferenceElement(ElementType.TET, pts, wts, N, dN)


def _prism() -> ReferenceElement:
    # triangle 3-point midpoint rule x 2-point Gauss in z
    tri_pts = np.array([[0.5, 0.0], [0.5, 0.5], [0.0, 0.5]])
    tri_w = np.full(3, 1.0 / 6.0)  # integrates to triangle area 1/2
    z_pts = np.array([-_G, _G])
    z_w = np.array([1.0, 1.0])
    pts, wts = [], []
    for (x, y), tw in zip(tri_pts, tri_w):
        for z, zw in zip(z_pts, z_w):
            pts.append([x, y, z])
            wts.append(tw * zw)
    pts = np.asarray(pts)
    wts = np.asarray(wts)

    def shape(p):
        x, y, z = p
        tri = np.array([1.0 - x - y, x, y])
        lo, hi = (1.0 - z) / 2.0, (1.0 + z) / 2.0
        return np.concatenate([tri * lo, tri * hi])

    def grads(p):
        x, y, z = p
        tri = np.array([1.0 - x - y, x, y])
        dtri = np.array([[-1.0, -1.0], [1.0, 0.0], [0.0, 1.0]])
        lo, hi = (1.0 - z) / 2.0, (1.0 + z) / 2.0
        g = np.zeros((6, 3))
        g[:3, :2] = dtri * lo
        g[3:, :2] = dtri * hi
        g[:3, 2] = -tri / 2.0
        g[3:, 2] = tri / 2.0
        return g

    N = np.stack([shape(p) for p in pts])
    dN = np.stack([grads(p) for p in pts])
    return ReferenceElement(ElementType.PRISM, pts, wts, N, dN)


def _pyramid() -> ReferenceElement:
    # degenerate trilinear hex: base (+-1, +-1, -1), apex (0, 0, +1);
    # the four top hex nodes coincide at the apex.
    corners = np.array([[-1, -1], [1, -1], [1, 1], [-1, 1]], dtype=float)
    g = _G
    pts = np.array([[sx * g, sy * g, sz * g]
                    for sx in (-1, 1) for sy in (-1, 1) for sz in (-1, 1)],
                   dtype=float)
    wts = np.full(8, 1.0)

    def shape(p):
        x, y, z = p
        lo, hi = (1.0 - z) / 2.0, (1.0 + z) / 2.0
        base = np.array([(1 + cx * x) * (1 + cy * y) / 4.0
                         for cx, cy in corners])
        return np.concatenate([base * lo, [hi]])

    def grads(p):
        x, y, z = p
        lo = (1.0 - z) / 2.0
        g5 = np.zeros((5, 3))
        for i, (cx, cy) in enumerate(corners):
            base = (1 + cx * x) * (1 + cy * y) / 4.0
            g5[i, 0] = cx * (1 + cy * y) / 4.0 * lo
            g5[i, 1] = cy * (1 + cx * x) / 4.0 * lo
            g5[i, 2] = -base / 2.0
        g5[4, 2] = 0.5
        return g5

    N = np.stack([shape(p) for p in pts])
    dN = np.stack([grads(p) for p in pts])
    return ReferenceElement(ElementType.PYRAMID, pts, wts, N, dN)


@lru_cache(maxsize=None)
def reference_element(etype: ElementType) -> ReferenceElement:
    """The (cached) reference element for ``etype``."""
    if etype == ElementType.TET:
        return _tet()
    if etype == ElementType.PRISM:
        return _prism()
    if etype == ElementType.PYRAMID:
        return _pyramid()
    raise ValueError(f"unknown element type {etype!r}")
