"""Subgrid-scale (SGS) velocity computation — the paper's "SGS" phase.

In Alya's Variational MultiScale (VMS) formulation (Houzeaux & Principe
2008) the velocity is split into a resolved (grid) scale and a subgrid
scale; the subgrid velocity is tracked per element and updated each step
from the momentum residual:

    u_sgs <- tau_e * R(u_h),    tau_e^-1 ~ c1 nu / h^2 + c2 |u| / h

The computational signature matters for the reproduction: a loop over
elements with **no shared updates** (each element owns its u_sgs), so the
parallel versions need no atomics — the paper uses this phase (Fig. 7) to
measure the pure *overhead* of coloring and multidependences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..mesh.elements import ElementType, NODES_PER_TYPE
from ..mesh.mesh import Mesh
from ..perf import toggles as _perf_toggles
from . import geometry as _geom
from .shape import reference_element

__all__ = ["SGSState", "update_sgs"]

_C1 = 4.0
_C2 = 2.0


@dataclass
class SGSState:
    """Per-element subgrid-scale velocity."""

    values: np.ndarray   # (nelem, 3)

    @classmethod
    def zeros(cls, nelem: int) -> "SGSState":
        """Fresh state with zero subgrid velocity everywhere."""
        return cls(values=np.zeros((nelem, 3)))


def update_sgs(mesh: Mesh, state: SGSState, velocity: np.ndarray,
               viscosity: float, dt: float,
               element_ids: Optional[np.ndarray] = None) -> SGSState:
    """One SGS update sweep over ``element_ids`` (default: all elements).

    Computes, per element, a residual estimate from the resolved velocity
    (convection plus temporal term against the previous subgrid value) and
    relaxes ``u_sgs`` toward ``tau * residual``.  Purely element-local —
    the race-free structure of the paper's SGS phase.
    """
    if element_ids is None:
        element_ids = np.arange(mesh.nelem)
    element_ids = np.asarray(element_ids)
    values = state.values
    if _perf_toggles.TOGGLES.geometry_cache:
        # cached grads/vol are produced by the identical operation sequence
        # (repro.fem.geometry), so this branch is bit-identical to the
        # inline one below
        for blk in _geom.geometry_blocks(mesh, element_ids):
            ref = reference_element(blk.etype)
            eids, conn, grads = blk.eids, blk.conn, blk.grads
            ue = velocity[conn]                                # (ne, nn, 3)
            h = np.cbrt(np.maximum(blk.vol, 1e-300))
            uq = np.einsum("qa,eaj->eqj", ref.N, ue).mean(axis=1)
            gradu = np.einsum("eqnj,enk->eqjk", grads, ue).mean(axis=1)
            conv = np.einsum("ej,ejk->ek", uq, gradu)          # (ne, 3)
            umag = np.linalg.norm(uq, axis=1)
            inv_tau = _C1 * viscosity / h ** 2 + _C2 * umag / h
            tau = 1.0 / (inv_tau + 1.0 / dt + 1e-30)
            residual = -conv - values[eids] / dt
            values[eids] = tau[:, None] * residual
        return state
    etypes = mesh.elem_types[element_ids]
    for etype in ElementType:
        sel = etypes == etype
        eids = element_ids[sel]
        if len(eids) == 0:
            continue
        nn = NODES_PER_TYPE[etype]
        ref = reference_element(etype)
        conn = mesh.elem_nodes[eids][:, :nn]
        xe = mesh.coords[conn]
        ue = velocity[conn]                                   # (ne, nn, 3)
        J = np.einsum("qni,enj->eqij", ref.dN, xe)
        detJ = np.abs(np.linalg.det(J))
        vol = (detJ * ref.weights[None, :]).sum(axis=1)       # (ne,)
        h = np.cbrt(np.maximum(vol, 1e-300))
        invJ = np.linalg.inv(J)
        # see repro.fem.assembly._geometry for the transposed-Jacobian rule
        grads = np.einsum("qni,eqji->eqnj", ref.dN, invJ)
        # mean velocity and mean convective term over quadrature points
        uq = np.einsum("qa,eaj->eqj", ref.N, ue).mean(axis=1)  # (ne, 3)
        gradu = np.einsum("eqnj,enk->eqjk", grads, ue).mean(axis=1)
        conv = np.einsum("ej,ejk->ek", uq, gradu)              # (ne, 3)
        umag = np.linalg.norm(uq, axis=1)
        inv_tau = _C1 * viscosity / h ** 2 + _C2 * umag / h
        tau = 1.0 / (inv_tau + 1.0 / dt + 1e-30)
        residual = -conv - values[eids] / dt
        values[eids] = tau[:, None] * residual
    return state
