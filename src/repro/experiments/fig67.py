"""Figures 6 & 7 — hybrid speedup of assembly / SGS per strategy.

Paper setup: both clusters, three parallelizations (Atomics, Coloring,
Multidep) at thread counts 1, 2, 4 per rank (total cores constant: 96 on
MareNostrum4, 192 on Thunder).  Speedup S_c = t_MPI / t_c is measured per
phase against the pure-MPI run on the same node count.

The sweep itself is a campaign (:func:`repro.campaign.hybrid_sweep_campaign`)
executed through the shared :mod:`repro.campaign` runner: Fig. 6 and
Fig. 7 expand to the *same* cells (they differ only in which phase's
elapsed time is read), so generating one memoizes the other when a result
store is attached.

Shape targets (Sec. 4.3):

* Fig. 6 (assembly): atomics < 1 almost everywhere, much worse on Intel;
  coloring better than atomics on both; multidep best everywhere;
  multidep/atomics ~2.5x on Intel, ~1.2x on Arm.
* Fig. 7 (SGS): no races, so the "atomics" build (a plain parallel loop)
  is fastest; coloring/multidep pay <10 % structural overhead; hybrid
  versions outperform pure MPI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..app import WorkloadSpec
from ..campaign import hybrid_sweep_campaign, run_campaign
from ..campaign.figures import CLUSTER_TOTALS
from .common import format_table, reference_workload

__all__ = ["HybridSweepResult", "run_fig6", "run_fig7", "CLUSTER_TOTALS"]

_STRATEGIES = ("atomics", "coloring", "multidep")
_THREADS = (1, 2, 4)


@dataclass
class HybridSweepResult:
    """Speedups per (cluster, strategy, threads) for one phase."""

    phase: str
    #: {cluster: {strategy value: {threads: speedup}}}
    speedups: dict
    #: {cluster: MPI-only phase time (s)}
    baselines: dict
    #: {cluster: total cores} used in the sweep
    totals: dict = field(default_factory=dict)

    def format(self) -> str:
        """One table per cluster, configurations as columns."""
        blocks = []
        for cluster, per_strategy in self.speedups.items():
            total = self.totals.get(cluster, CLUSTER_TOTALS.get(cluster, 0))
            headers = ["version"] + [f"{total // t}x{t}" for t in _THREADS]
            rows = []
            for strategy, per_threads in per_strategy.items():
                rows.append([strategy]
                            + [f"{per_threads[t]:.2f}" for t in _THREADS])
            blocks.append(format_table(
                headers, rows,
                title=f"{self.phase} speedup vs MPI-only on {cluster}"))
        return "\n\n".join(blocks)

    def to_rows(self) -> list:
        """Structured rows: one dict per (cluster, strategy, threads)."""
        return [{"cluster": cluster, "strategy": strategy,
                 "threads": threads, "speedup": value,
                 "baseline_seconds": self.baselines[cluster],
                 "phase": self.phase}
                for cluster, per_strategy in self.speedups.items()
                for strategy, per_threads in per_strategy.items()
                for threads, value in per_threads.items()]

    def speedup(self, cluster: str, strategy, threads: int) -> float:
        """One data point of the figure."""
        key = getattr(strategy, "value", strategy)
        return self.speedups[cluster][key][threads]


def _run_sweep(phase: str, spec: WorkloadSpec | None,
               totals: dict | None = None) -> HybridSweepResult:
    wl = reference_workload(spec)
    totals = dict(totals or CLUSTER_TOTALS)
    campaign = hybrid_sweep_campaign(spec=wl.spec, totals=totals,
                                     name=f"fig67-{phase}")
    run = run_campaign(campaign)
    elapsed = {}
    for outcome in run.outcomes:
        if outcome.record is None:
            raise RuntimeError(
                f"{outcome.job.job_id} failed: {outcome.error}")
        job = outcome.job
        key = (job.tag("cluster"), job.tag("strategy"),
               int(job.tag("threads")))
        elapsed[key] = outcome.record["metrics"]["phase_elapsed"][phase]
    speedups: dict = {}
    baselines: dict = {}
    for cluster in totals:
        base = elapsed[(cluster, "mpionly", 1)]
        baselines[cluster] = base
        speedups[cluster] = {
            strategy: {t: base / elapsed[(cluster, strategy, t)]
                       for t in _THREADS}
            for strategy in _STRATEGIES}
    return HybridSweepResult(phase=phase, speedups=speedups,
                             baselines=baselines, totals=totals)


def run_fig6(spec: WorkloadSpec | None = None,
             totals: dict | None = None) -> HybridSweepResult:
    """Fig. 6: hybrid assembly speedup wrt the MPI-only code.

    ``totals`` overrides the per-cluster core counts (paper values by
    default; smaller counts make scaled-down test runs fast).
    """
    return _run_sweep("assembly", spec, totals)


def run_fig7(spec: WorkloadSpec | None = None,
             totals: dict | None = None) -> HybridSweepResult:
    """Fig. 7: hybrid SGS speedup wrt the MPI-only code."""
    return _run_sweep("sgs", spec, totals)
