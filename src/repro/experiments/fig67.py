"""Figures 6 & 7 — hybrid speedup of assembly / SGS per strategy.

Paper setup: both clusters, three parallelizations (Atomics, Coloring,
Multidep) at thread counts 1, 2, 4 per rank (total cores constant: 96 on
MareNostrum4, 192 on Thunder).  Speedup S_c = t_MPI / t_c is measured per
phase against the pure-MPI run on the same node count.

Shape targets (Sec. 4.3):

* Fig. 6 (assembly): atomics < 1 almost everywhere, much worse on Intel;
  coloring better than atomics on both; multidep best everywhere;
  multidep/atomics ~2.5x on Intel, ~1.2x on Arm.
* Fig. 7 (SGS): no races, so the "atomics" build (a plain parallel loop)
  is fastest; coloring/multidep pay <10 % structural overhead; hybrid
  versions outperform pure MPI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..app import RunConfig, WorkloadSpec, run_cfpd
from ..core import Strategy
from .common import format_table, reference_workload

__all__ = ["HybridSweepResult", "run_fig6", "run_fig7", "CLUSTER_TOTALS"]

#: Total cores used per cluster in the paper's Fig. 6/7 sweeps.
CLUSTER_TOTALS = {"marenostrum4": 96, "thunder": 192}

_STRATEGIES = (Strategy.ATOMICS, Strategy.COLORING, Strategy.MULTIDEP)
_THREADS = (1, 2, 4)


@dataclass
class HybridSweepResult:
    """Speedups per (cluster, strategy, threads) for one phase."""

    phase: str
    #: {cluster: {strategy value: {threads: speedup}}}
    speedups: dict
    #: {cluster: MPI-only phase time (s)}
    baselines: dict
    #: {cluster: total cores} used in the sweep
    totals: dict = field(default_factory=dict)

    def format(self) -> str:
        """One table per cluster, configurations as columns."""
        blocks = []
        for cluster, per_strategy in self.speedups.items():
            total = self.totals.get(cluster, CLUSTER_TOTALS.get(cluster, 0))
            headers = ["version"] + [f"{total // t}x{t}" for t in _THREADS]
            rows = []
            for strategy, per_threads in per_strategy.items():
                rows.append([strategy]
                            + [f"{per_threads[t]:.2f}" for t in _THREADS])
            blocks.append(format_table(
                headers, rows,
                title=f"{self.phase} speedup vs MPI-only on {cluster}"))
        return "\n\n".join(blocks)

    def speedup(self, cluster: str, strategy: Strategy, threads: int
                ) -> float:
        """One data point of the figure."""
        return self.speedups[cluster][strategy.value][threads]


def _run_sweep(phase: str, spec: WorkloadSpec | None,
               totals: dict | None = None) -> HybridSweepResult:
    wl = reference_workload(spec)
    speedups: dict = {}
    baselines: dict = {}
    for cluster, total in (totals or CLUSTER_TOTALS).items():
        base_cfg = RunConfig(cluster=cluster, nranks=total,
                             threads_per_rank=1,
                             assembly_strategy=Strategy.MPI_ONLY,
                             sgs_strategy=Strategy.MPI_ONLY)
        base = run_cfpd(base_cfg, workload=wl).phase_log.elapsed(phase)
        baselines[cluster] = base
        speedups[cluster] = {}
        for strategy in _STRATEGIES:
            per_threads = {}
            for threads in _THREADS:
                cfg = RunConfig(cluster=cluster, nranks=total // threads,
                                threads_per_rank=threads,
                                assembly_strategy=strategy,
                                sgs_strategy=strategy)
                res = run_cfpd(cfg, workload=wl)
                per_threads[threads] = base / res.phase_log.elapsed(phase)
            speedups[cluster][strategy.value] = per_threads
    return HybridSweepResult(phase=phase, speedups=speedups,
                             baselines=baselines,
                             totals=dict(totals or CLUSTER_TOTALS))


def run_fig6(spec: WorkloadSpec | None = None,
             totals: dict | None = None) -> HybridSweepResult:
    """Fig. 6: hybrid assembly speedup wrt the MPI-only code.

    ``totals`` overrides the per-cluster core counts (paper values by
    default; smaller counts make scaled-down test runs fast).
    """
    return _run_sweep("assembly", spec, totals)


def run_fig7(spec: WorkloadSpec | None = None,
             totals: dict | None = None) -> HybridSweepResult:
    """Fig. 7: hybrid SGS speedup wrt the MPI-only code."""
    return _run_sweep("sgs", spec, totals)
