"""Adaptive-Δt x DLB interaction study (ROADMAP follow-up to Figs. 8-11).

Adaptive time stepping changes the runtime-optimization question the paper
asks.  Globally it reaches the simulated endpoint in fewer steps — a
straight wall-time win.  Locally (per-subdomain Δt rungs) it *reshapes the
imbalance profile every global step*: ranks holding fast-flow regions
subcycle more than ranks holding slow ones, and a transient inlet waveform
moves that imbalance over time — precisely the regime LeWI-style DLB
lending (Sec. 4.4 of the paper) is meant to win in.

This family runs the 2x2 {fixed Δt, local adaptive} x {DLB off, on} grid
of :func:`repro.campaign.adaptive_dlb_campaign` on a transient workload
and reports, per cell, the wall time, steps to endpoint, subcycle totals
and the DLB gain — answering "does DLB recover the imbalance adaptivity
introduces?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..app import WorkloadSpec
from ..campaign import adaptive_dlb_campaign, run_campaign
from .common import format_table

__all__ = ["AdaptiveDLBResult", "run_adaptive_dlb"]


@dataclass
class AdaptiveDLBResult:
    """The 2x2 grid of the adaptive-vs-DLB study.

    ``cells`` maps ``(mode, dlb)`` — mode in {"off", "local"}, dlb a bool
    — to the metrics dict of that run (always ``total_time`` and
    ``n_steps``; local cells add ``subcycles_total``, ``subcycles_max``
    and ``subcycle_imbalance``).
    """

    cluster: str
    cells: dict

    def time(self, mode: str, dlb: bool) -> float:
        """Simulated wall time of one cell."""
        return self.cells[(mode, dlb)]["total_time"]

    def dlb_gain(self, mode: str) -> float:
        """DLB-off / DLB-on time for ``mode`` — how much lending buys."""
        return self.time(mode, False) / self.time(mode, True)

    def adaptive_speedup(self, dlb: bool) -> float:
        """Fixed-Δt / adaptive time at one DLB setting — what adaptivity
        buys on top of (or without) lending."""
        return self.time("off", dlb) / self.time("local", dlb)

    def interaction(self) -> float:
        """DLB gain under adaptivity relative to DLB gain at fixed Δt.

        > 1 means adaptive stepping creates imbalance that DLB recovers —
        the hypothesis of the study.
        """
        return self.dlb_gain("local") / self.dlb_gain("off")

    def format(self) -> str:
        """The study as a paper-style table."""
        rows = []
        for mode in ("off", "local"):
            for dlb in (False, True):
                cell = self.cells[(mode, dlb)]
                rows.append((
                    "fixed Δt" if mode == "off" else "local adaptive",
                    "on" if dlb else "off",
                    f"{cell['total_time'] * 1e3:.3f}",
                    str(cell["n_steps"]),
                    str(cell.get("subcycles_total", "-")),
                ))
        table = format_table(
            ["time stepping", "DLB", "time (ms)", "steps", "subcycles"],
            rows, title=f"Adaptive Δt x DLB on {self.cluster}")
        return (f"{table}\n"
                f"DLB gain fixed: {self.dlb_gain('off'):.2f}x   "
                f"DLB gain adaptive: {self.dlb_gain('local'):.2f}x   "
                f"interaction: {self.interaction():.2f}x")

    def to_rows(self) -> list:
        """Structured rows, one dict per cell."""
        return [{"cluster": self.cluster, "mode": mode, "dlb": dlb,
                 **self.cells[(mode, dlb)]}
                for mode in ("off", "local") for dlb in (False, True)]


def run_adaptive_dlb(cluster: str = "thunder",
                     spec: Optional[WorkloadSpec] = None,
                     total: Optional[int] = None) -> AdaptiveDLBResult:
    """Run the {fixed, local adaptive} x {DLB off, on} campaign."""
    campaign = adaptive_dlb_campaign(cluster, spec=spec, total=total)
    run = run_campaign(campaign)
    cells: dict = {}
    for outcome in run.outcomes:
        if outcome.record is None:
            raise RuntimeError(
                f"{outcome.job.job_id} failed: {outcome.error}")
        job = outcome.job
        metrics = outcome.record["metrics"]
        adaptive = metrics.get("adaptive", {})
        cell = {
            "total_time": metrics["total_time"],
            "n_steps": adaptive.get("n_sim_steps", job.spec.n_steps),
            "load_balance": metrics["pop"]["load_balance"],
        }
        for key in ("steps_saved", "subcycles_total", "subcycles_max",
                    "subcycle_imbalance", "max_cfl"):
            if key in adaptive:
                cell[key] = adaptive[key]
        if "dlb" in metrics:
            cell["dlb_events"] = (metrics["dlb"]["lend_events"]
                                  + metrics["dlb"]["borrow_events"])
        cells[(job.spec.adaptive, job.config.dlb)] = cell
    return AdaptiveDLBResult(cluster=cluster, cells=cells)
