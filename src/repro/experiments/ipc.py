"""Section 4.3 IPC counters — assembly IPC per strategy and cluster.

The paper reports (from hardware counters):

* Thunder: MPI-only assembly IPC ~0.49; with atomics ~0.42 (-14 %)
* MareNostrum4: MPI-only ~2.25; with atomics ~1.15 (-50 %)
* multidependences: 94-96 % of the MPI-only IPC on both clusters

We measure the same counters from the simulated execution (instructions
retired / cycles busy, exactly what `perf` would report).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..app import RunConfig, WorkloadSpec, run_cfpd
from ..core import Strategy
from .common import format_table, reference_workload

__all__ = ["PAPER_IPC", "IPCResult", "run_ipc_counters"]

#: Paper values: (cluster, strategy) -> assembly IPC.
PAPER_IPC = {
    ("marenostrum4", "mpionly"): 2.25,
    ("marenostrum4", "atomics"): 1.15,
    ("thunder", "mpionly"): 0.49,
    ("thunder", "atomics"): 0.42,
}


@dataclass
class IPCResult:
    """Measured assembly IPC per cluster and strategy."""

    #: {(cluster, strategy value): ipc}
    ipc: dict

    def to_rows(self) -> list:
        """Structured rows: one dict per (cluster, strategy)."""
        return [{"cluster": cluster, "strategy": strategy, "ipc": value,
                 "paper_ipc": PAPER_IPC.get((cluster, strategy))}
                for (cluster, strategy), value in sorted(self.ipc.items())]

    def format(self) -> str:
        """Measured-vs-paper IPC table."""
        rows = []
        for (cluster, strategy), value in sorted(self.ipc.items()):
            paper = PAPER_IPC.get((cluster, strategy))
            rows.append((cluster, strategy, f"{value:.2f}",
                         f"{paper:.2f}" if paper else "-"))
        return format_table(
            ["cluster", "version", "assembly IPC", "paper"],
            rows, title="Assembly-phase IPC (Sec. 4.3 counters)")

    def relative_drop(self, cluster: str) -> float:
        """Fractional IPC drop of atomics vs MPI-only on ``cluster``."""
        base = self.ipc[(cluster, "mpionly")]
        at = self.ipc[(cluster, "atomics")]
        return 1.0 - at / base

    def multidep_fraction(self, cluster: str) -> float:
        """Multidep IPC as a fraction of MPI-only IPC."""
        return (self.ipc[(cluster, "multidep")]
                / self.ipc[(cluster, "mpionly")])


def run_ipc_counters(spec: WorkloadSpec | None = None) -> IPCResult:
    """Measure the Sec. 4.3 IPC table on both clusters."""
    wl = reference_workload(spec)
    out = {}
    for cluster, total in (("marenostrum4", 96), ("thunder", 192)):
        for strategy in (Strategy.MPI_ONLY, Strategy.ATOMICS,
                         Strategy.COLORING, Strategy.MULTIDEP):
            cfg = RunConfig(cluster=cluster, nranks=total // 2,
                            threads_per_rank=2,
                            assembly_strategy=strategy,
                            sgs_strategy=strategy)
            if strategy is Strategy.MPI_ONLY:
                cfg = RunConfig(cluster=cluster, nranks=total,
                                threads_per_rank=1,
                                assembly_strategy=strategy,
                                sgs_strategy=strategy)
            res = run_cfpd(cfg, workload=wl)
            out[(cluster, strategy.value)] = res.ipc("assembly")
    return IPCResult(ipc=out)
