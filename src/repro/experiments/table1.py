"""Table 1 — load balance and time share per phase.

Paper setup: the respiratory simulation on one Thunder node, 96 MPI
processes (pure MPI), 4e5 particles injected during the first step, 10
time steps.  Reported per phase: the load-balance metric L96 (Eq. 9) and
the percentage of execution time.

Paper values::

    Phase             L96    % Time
    Matrix assembly   0.66   40.84
    Solver1           0.90   16.13
    Solver2           0.89    4.20
    SGS               0.61   21.43
    Particles         0.02    3.37
"""

from __future__ import annotations

from dataclasses import dataclass

from ..app import RunConfig, WorkloadSpec, run_cfpd
from ..core import Strategy
from .common import format_table, reference_workload, small_load_spec

__all__ = ["PAPER_TABLE1", "Table1Result", "run_table1"]

#: The paper's measured values: phase -> (L96, % time).
PAPER_TABLE1 = {
    "assembly": (0.66, 40.84),
    "solver1": (0.90, 16.13),
    "solver2": (0.89, 4.20),
    "sgs": (0.61, 21.43),
    "particles": (0.02, 3.37),
}


@dataclass
class Table1Result:
    """Measured phase metrics next to the paper's."""

    rows: list[dict]
    total_time: float

    @property
    def residual_percent(self) -> float:
        """Time share outside the five phases (MPI + migration); the
        paper's Table 1 rows sum to ~86 %, leaving a similar residual."""
        return 100.0 - sum(r["percent_time"] for r in self.rows)

    def to_rows(self) -> list:
        """Structured rows: one dict per phase, paper values attached."""
        out = []
        for row in self.rows:
            paper = PAPER_TABLE1.get(row["phase"], (None, None))
            out.append({**row, "paper_load_balance": paper[0],
                        "paper_percent_time": paper[1]})
        return out

    def format(self) -> str:
        """Paper-style table with measured-vs-paper columns."""
        table_rows = []
        for row in self.rows:
            paper = PAPER_TABLE1.get(row["phase"], (None, None))
            table_rows.append((
                row["phase"],
                f"{row['load_balance']:.2f}",
                f"{paper[0]:.2f}" if paper[0] is not None else "-",
                f"{row['percent_time']:.2f}",
                f"{paper[1]:.2f}" if paper[1] is not None else "-",
            ))
        table_rows.append(("(mpi/other)", "-", "-",
                           f"{self.residual_percent:.2f}", "14.03"))
        return format_table(
            ["Phase", "L96", "L96 (paper)", "%Time", "%Time (paper)"],
            table_rows,
            title="Table 1: phase load balance and time share "
                  "(96 ranks, Thunder)")


def run_table1(spec: WorkloadSpec | None = None,
               nranks: int = 96) -> Table1Result:
    """Reproduce Table 1: pure-MPI run on a Thunder node."""
    wl = reference_workload(spec or small_load_spec())
    config = RunConfig(cluster="thunder", num_nodes=1, nranks=nranks,
                       threads_per_rank=1, mode="sync",
                       assembly_strategy=Strategy.MPI_ONLY,
                       sgs_strategy=Strategy.MPI_ONLY)
    result = run_cfpd(config, workload=wl)
    return Table1Result(rows=result.phase_summary(),
                        total_time=result.total_time)
