"""Experiment runners: one per table/figure of the paper's evaluation.

=============  ==========================================  ==============
paper item     what it shows                               runner
=============  ==========================================  ==============
Table 1        L96 + %time per phase (96 ranks, Thunder)   :func:`run_table1`
Figure 2       trace timeline of one step                  :func:`run_fig2`
Figure 6       hybrid assembly speedups per strategy       :func:`run_fig6`
Figure 7       hybrid SGS speedups per strategy            :func:`run_fig7`
Figure 8       4e5 particles, MN4, orig vs DLB             :func:`run_fig8`
Figure 9       4e5 particles, Thunder, orig vs DLB         :func:`run_fig9`
Figure 10      7e6 particles, MN4, orig vs DLB             :func:`run_fig10`
Figure 11      7e6 particles, Thunder, orig vs DLB         :func:`run_fig11`
Sec. 4.3 IPC   assembly IPC counters per strategy          :func:`run_ipc_counters`
(ROADMAP)      adaptive Δt x DLB interaction               :func:`run_adaptive_dlb`
(ROADMAP)      deposition per breathing pattern (cosim)    :func:`run_breathing`
=============  ==========================================  ==============
"""

from .adaptive import AdaptiveDLBResult, run_adaptive_dlb
from .breathing import BreathingResult, run_breathing
from .common import (
    format_table,
    large_load_spec,
    paper_scale_spec,
    reference_spec,
    reference_workload,
    small_load_spec,
)
from .dlb_figures import (
    COUPLED_SPLITS,
    DLBFigureResult,
    run_dlb_figure,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
)
from .fig2 import Fig2Result, run_fig2
from .fig67 import CLUSTER_TOTALS, HybridSweepResult, run_fig6, run_fig7
from .ipc import IPCResult, PAPER_IPC, run_ipc_counters
from .report import ARTIFACTS, generate_all
from .table1 import PAPER_TABLE1, Table1Result, run_table1

__all__ = [
    "ARTIFACTS",
    "AdaptiveDLBResult",
    "BreathingResult",
    "CLUSTER_TOTALS",
    "COUPLED_SPLITS",
    "DLBFigureResult",
    "Fig2Result",
    "HybridSweepResult",
    "IPCResult",
    "PAPER_IPC",
    "PAPER_TABLE1",
    "Table1Result",
    "format_table",
    "generate_all",
    "large_load_spec",
    "paper_scale_spec",
    "reference_spec",
    "reference_workload",
    "run_adaptive_dlb",
    "run_breathing",
    "run_dlb_figure",
    "run_fig2",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_ipc_counters",
    "run_table1",
    "small_load_spec",
]
