"""One-shot report generation: every table/figure into a directory.

``generate_all(output_dir)`` regenerates each paper artifact (Table 1,
Fig. 2, Figs. 6-11, the IPC counters) and writes the formatted text files —
the same content the benchmark harness produces, without pytest.  Exposed
on the CLI as ``python -m repro all``.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

from ..app import WorkloadSpec
from .dlb_figures import run_fig8, run_fig9, run_fig10, run_fig11
from .fig2 import run_fig2
from .fig67 import run_fig6, run_fig7
from .ipc import run_ipc_counters
from .table1 import run_table1

__all__ = ["ARTIFACTS", "generate_all"]

#: name -> callable(spec) returning an object with .format() / .render()
ARTIFACTS: dict = {
    "table1": lambda spec: run_table1(spec=spec).format(),
    "fig2_timeline": lambda spec: run_fig2(spec=spec).render(width=110),
    "fig6_assembly": lambda spec: run_fig6(spec=spec).format(),
    "fig7_sgs": lambda spec: run_fig7(spec=spec).format(),
    "fig8_dlb_mn4_small": lambda spec: run_fig8().format(),
    "fig9_dlb_thunder_small": lambda spec: run_fig9().format(),
    "fig10_dlb_mn4_large": lambda spec: run_fig10().format(),
    "fig11_dlb_thunder_large": lambda spec: run_fig11().format(),
    "ipc_counters": lambda spec: run_ipc_counters(spec=spec).format(),
}


def generate_all(output_dir: str,
                 spec: Optional[WorkloadSpec] = None,
                 only: Optional[list] = None,
                 progress: Optional[Callable[[str], None]] = print) -> dict:
    """Regenerate every artifact into ``output_dir``; returns
    {name: path}.

    ``only`` restricts to a subset of :data:`ARTIFACTS` keys; ``progress``
    (default ``print``) receives one status line per artifact.
    """
    os.makedirs(output_dir, exist_ok=True)
    names = list(ARTIFACTS) if only is None else list(only)
    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        raise KeyError(f"unknown artifacts {unknown}; "
                       f"available: {sorted(ARTIFACTS)}")
    paths = {}
    for name in names:
        t0 = time.perf_counter()
        text = ARTIFACTS[name](spec)
        path = os.path.join(output_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        paths[name] = path
        if progress is not None:
            progress(f"{name}: wrote {path} "
                     f"({time.perf_counter() - t0:.1f}s)")
    return paths
