"""Deposition fraction per breathing pattern (the cosim experiment family).

The physiologically meaningful question of the source paper's target
application: how much of an inhaled drug aerosol deposits in the airway,
and how does that depend on *how the subject breathes*?  The campaign of
:func:`repro.campaign.breathing_campaign` sweeps the named ventilation
patterns of :data:`repro.cosim.VENTILATION_PATTERNS` against CPAP
pressure and particle diameter (optionally tidal volume), each cell a
ventilator-coupled run: the 0D lung model drives the inlet through the
buffered co-simulation hub, the CFL ladder consumes the transient, and
injections are gated to inhalation windows.

Each cell reports its deposition fraction (deposited / injected over the
whole run) plus the per-phase deposition tallies of
``RunResult.cosim_diag`` — the rows behind the "deposition per breathing
pattern" figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..app import WorkloadSpec
from ..campaign import breathing_campaign, run_campaign
from .common import format_table

__all__ = ["BreathingResult", "run_breathing"]


@dataclass
class BreathingResult:
    """The breathing-pattern sweep.

    ``cells`` maps ``(pattern, cpap, diameter)`` — or
    ``(pattern, tidal_volume, cpap, diameter)`` when the tidal-volume
    axis is active — to that run's metrics dict: always
    ``deposition_fraction``, ``deposited``, ``escaped``, ``injected``,
    ``n_sim_steps``, ``steps_by_phase`` and ``total_time``; hub-coupled
    cells add the hub ``staleness_max``.
    """

    cluster: str
    cells: dict

    def patterns(self) -> list:
        """Pattern names present, in first-seen (campaign) order."""
        seen: list = []
        for key in self.cells:
            if key[0] not in seen:
                seen.append(key[0])
        return seen

    def deposition_fraction(self, *key) -> float:
        """Deposition fraction of one cell."""
        return self.cells[key]["deposition_fraction"]

    def by_pattern(self) -> dict:
        """Mean deposition fraction per pattern (over the other axes)."""
        out: dict = {}
        for key, cell in self.cells.items():
            out.setdefault(key[0], []).append(cell["deposition_fraction"])
        return {name: sum(vals) / len(vals)
                for name, vals in out.items()}

    def format(self) -> str:
        """The sweep as a paper-style table."""
        rows = []
        for key, cell in self.cells.items():
            pattern, rest = key[0], key[1:]
            cpap, diameter = rest[-2], rest[-1]
            rows.append((
                pattern,
                f"{cell['tidal_volume']:.0f}",
                f"{cpap:.1f}",
                f"{diameter * 1e6:.1f}",
                f"{cell['deposition_fraction']:.3f}",
                f"{cell['deposited']}/{cell['injected']}",
                str(cell["n_sim_steps"]),
            ))
        table = format_table(
            ["pattern", "V_t (ml)", "CPAP", "d (um)", "dep. frac",
             "dep/inj", "steps"],
            rows, title=f"Deposition per breathing pattern on "
                        f"{self.cluster}")
        means = "   ".join(f"{name}: {frac:.3f}"
                           for name, frac in self.by_pattern().items())
        return f"{table}\nmean deposition fraction — {means}"

    def figure(self) -> str:
        """ASCII bar chart of mean deposition fraction per pattern."""
        by = self.by_pattern()
        peak = max(by.values()) or 1.0
        width = 40
        lines = ["deposition fraction by breathing pattern",
                 "-" * (width + 18)]
        for name, frac in by.items():
            bar = "#" * max(1, int(round(width * frac / peak))) \
                if frac > 0 else ""
            lines.append(f"{name:>8} {frac:6.3f} |{bar}")
        return "\n".join(lines)

    def to_rows(self) -> list:
        """Structured rows, one dict per cell."""
        rows = []
        for key, cell in self.cells.items():
            row = {"cluster": self.cluster, "pattern": key[0],
                   "cpap": key[-2], "diameter": key[-1]}
            if len(key) == 4:
                row["tidal_volume"] = key[1]
            row.update(cell)
            rows.append(row)
        return rows


def run_breathing(cluster: str = "thunder",
                  spec: Optional[WorkloadSpec] = None,
                  total: Optional[int] = None,
                  patterns=None,
                  cpaps=(0.0, 1.0),
                  diameters=(2e-6, 8e-6),
                  tidal_volumes=None) -> BreathingResult:
    """Run the breathing-pattern deposition campaign and collect rows."""
    campaign = breathing_campaign(
        cluster, spec=spec, total=total, patterns=patterns, cpaps=cpaps,
        diameters=diameters, tidal_volumes=tidal_volumes)
    run = run_campaign(campaign)
    cells: dict = {}
    for outcome in run.outcomes:
        if outcome.record is None:
            raise RuntimeError(
                f"{outcome.job.job_id} failed: {outcome.error}")
        job = outcome.job
        metrics = outcome.record["metrics"]
        cosim = metrics.get("cosim", {})
        cell = {
            "total_time": metrics["total_time"],
            "tidal_volume": job.spec.tidal_volume,
            "n_sim_steps": cosim.get("n_sim_steps", job.spec.n_steps),
            "steps_by_phase": cosim.get("steps_by_phase", {}),
            "injected": cosim.get("total_injected", 0),
            "deposited": cosim.get("deposited", 0),
            "escaped": cosim.get("escaped", 0),
            "deposition_fraction": cosim.get("deposition_fraction", 0.0),
            "deposited_by_phase": cosim.get("deposited_by_phase", {}),
        }
        if "hub" in cosim:
            cell["staleness_max"] = cosim["hub"].get("staleness_max", 0.0)
        key = [dict(job.tags)["pattern"]]
        if tidal_volumes:
            key.append(job.spec.tidal_volume)
        key.extend([job.spec.cpap, job.spec.particle_diameter])
        cells[tuple(key)] = cell
    return BreathingResult(cluster=cluster, cells=cells)
