"""Figure 2 — Paraver-style trace timeline of one simulation step.

The paper's figure shows, for 96 MPI processes on a Thunder node, the
phases of one time step (assembly, solvers, SGS, particles) colored along
the time axis; the ragged right edges of each phase *are* the load
imbalance, and the particles phase is dominated by one or two processes.

We regenerate the same data: per-rank phase intervals of a chosen step,
rendered as ASCII (`render_timeline`) or exported as machine-readable rows
(`timeline_rows`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..app import RunConfig, WorkloadSpec, run_cfpd
from ..core import Strategy
from ..trace import PhaseLog, render_timeline, timeline_rows
from .common import reference_workload, small_load_spec

__all__ = ["Fig2Result", "run_fig2"]


@dataclass
class Fig2Result:
    """Trace data of the Table-1 run, ready for timeline rendering."""

    phase_log: PhaseLog
    step: int

    def render(self, width: int = 100, max_ranks: int = 24) -> str:
        """ASCII timeline of the selected step."""
        return render_timeline(self.phase_log, self.step, width=width,
                               max_ranks=max_ranks)

    def rows(self) -> list:
        """(rank, phase, t0, t1) rows of the selected step (CSV-ready)."""
        return timeline_rows(self.phase_log, self.step)

    def to_rows(self) -> list:
        """Structured rows: one dict per trace interval."""
        return [{"step": self.step, "rank": rank, "phase": phase,
                 "t0": t0, "t1": t1}
                for rank, phase, t0, t1 in self.rows()]


def run_fig2(spec: WorkloadSpec | None = None, step: int = 0,
             nranks: int = 96) -> Fig2Result:
    """Reproduce the Fig. 2 trace: one step of the 96-rank Thunder run."""
    wl = reference_workload(spec or small_load_spec())
    config = RunConfig(cluster="thunder", num_nodes=1, nranks=nranks,
                       threads_per_rank=1, mode="sync",
                       assembly_strategy=Strategy.MPI_ONLY,
                       sgs_strategy=Strategy.MPI_ONLY)
    result = run_cfpd(config, workload=wl)
    return Fig2Result(phase_log=result.phase_log, step=step)
