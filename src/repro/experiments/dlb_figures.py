"""Figures 8-11 — execution time of sync/coupled runs with and without DLB.

Paper setup (Sec. 4.4): multidep assembly + atomics SGS, one OpenMP thread
per MPI process, two nodes per cluster.  Two particle loads — 4e5 (load in
the fluid) and 7e6 (load in the particles) — and, per cluster, the
synchronous mode plus coupled mode with several fluid+particle splits,
each run with the original runtime and with DLB.

Each figure is a thin campaign spec
(:func:`repro.campaign.dlb_figure_campaign`) executed through the shared
:mod:`repro.campaign` runner.

=========  =========  ===========================  =======================
figure     cluster    particle load                reported effect
=========  =========  ===========================  =======================
Fig. 8     MN4        4e5    bad split up to ~2x worse; DLB improves all
Fig. 9     Thunder    4e5    same trends
Fig. 10    MN4        7e6    DLB gains 1.7-2.2x
Fig. 11    Thunder    7e6    DLB gains 2-3x; optimum split differs
=========  =========  ===========================  =======================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..app import WorkloadSpec
from ..campaign import dlb_figure_campaign, run_campaign
from ..campaign.figures import COUPLED_SPLITS
from .common import format_table, large_load_spec, reference_workload, small_load_spec

__all__ = ["DLBFigureResult", "run_dlb_figure", "run_fig8", "run_fig9",
           "run_fig10", "run_fig11", "COUPLED_SPLITS"]


@dataclass
class DLBFigureResult:
    """Execution time per configuration, original vs DLB."""

    cluster: str
    load_tag: str
    #: list of (label, original seconds, DLB seconds)
    rows: list

    def format(self) -> str:
        """Paper-style bar-chart data as a table."""
        table = [(label, f"{orig * 1e3:.3f}", f"{dlb * 1e3:.3f}",
                  f"{orig / dlb:.2f}x")
                 for label, orig, dlb in self.rows]
        return format_table(
            ["configuration", "original (ms)", "DLB (ms)", "DLB gain"],
            table,
            title=(f"Simulation of {self.load_tag} particles on "
                   f"{self.cluster}"))

    def to_rows(self) -> list:
        """Structured rows: one dict per swept configuration."""
        return [{"cluster": self.cluster, "load": self.load_tag,
                 "configuration": label, "original_seconds": orig,
                 "dlb_seconds": dlb, "dlb_gain": orig / dlb}
                for label, orig, dlb in self.rows]

    def best_original(self) -> float:
        """Fastest original-runtime configuration."""
        return min(orig for _, orig, _ in self.rows)

    def worst_original(self) -> float:
        """Slowest original-runtime configuration."""
        return max(orig for _, orig, _ in self.rows)

    def dlb_gains(self) -> list:
        """Original/DLB speedup per configuration."""
        return [orig / dlb for _, orig, dlb in self.rows]

    def dlb_spread(self) -> float:
        """max/min of the DLB times — how flat DLB makes the choice."""
        dlbs = [dlb for _, _, dlb in self.rows]
        return max(dlbs) / min(dlbs)


def run_dlb_figure(cluster: str, spec: WorkloadSpec,
                   load_tag: str = "") -> DLBFigureResult:
    """One of Figs. 8-11: sweep sync + coupled splits, original vs DLB."""
    wl = reference_workload(spec)
    campaign = dlb_figure_campaign(cluster, spec=wl.spec)
    run = run_campaign(campaign)
    times: dict = {}
    labels: dict = {}
    for outcome in run.outcomes:
        if outcome.record is None:
            raise RuntimeError(
                f"{outcome.job.job_id} failed: {outcome.error}")
        job = outcome.job
        times[(job.tag("split"), job.config.dlb)] = \
            outcome.record["metrics"]["total_time"]
        labels[job.tag("split")] = job.tag("label")
    splits = ["sync"] + [str(f) for f in COUPLED_SPLITS[cluster]]
    rows = [(labels[s], times[(s, False)], times[(s, True)])
            for s in splits]
    return DLBFigureResult(cluster=cluster, load_tag=load_tag, rows=rows)


def run_fig8(spec: WorkloadSpec | None = None) -> DLBFigureResult:
    """Fig. 8: 4e5-scaled particles on MareNostrum4."""
    return run_dlb_figure("marenostrum4", spec or small_load_spec(),
                          "4e5-scaled")


def run_fig9(spec: WorkloadSpec | None = None) -> DLBFigureResult:
    """Fig. 9: 4e5-scaled particles on Thunder."""
    return run_dlb_figure("thunder", spec or small_load_spec(),
                          "4e5-scaled")


def run_fig10(spec: WorkloadSpec | None = None) -> DLBFigureResult:
    """Fig. 10: 7e6-scaled particles on MareNostrum4."""
    return run_dlb_figure("marenostrum4", spec or large_load_spec(),
                          "7e6-scaled")


def run_fig11(spec: WorkloadSpec | None = None) -> DLBFigureResult:
    """Fig. 11: 7e6-scaled particles on Thunder."""
    return run_dlb_figure("thunder", spec or large_load_spec(),
                          "7e6-scaled")
