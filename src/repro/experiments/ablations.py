"""Ablation studies over the design choices DESIGN.md calls out.

Not figures of the paper — these quantify the knobs behind the
reproduction so their settings are justified by data rather than fiat:

* :func:`ablate_mapping` — coupled-mode process placement (block vs
  cyclic) with and without DLB.  DLB only moves cores *within a node*, so
  block placement (fluid on node 0, particles on node 1) starves it.
* :func:`ablate_subdomains` — multidep assembly time vs the subdomains-
  per-rank target (task granularity trade-off: few tasks = poor packing,
  many tiny tasks = overhead).
* :func:`ablate_min_shared` — the subdomain-adjacency threshold (the
  documented scale compensation): adjacency degree and assembly makespan
  vs ``min_shared_nodes``.
* :func:`ablate_coloring` — greedy vs DSATUR element coloring: color
  count and per-color class balance on airway rank domains.
* :func:`ablate_dlb_policy` — LeWI (lend all) vs LeWI-half.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..app import RunConfig, WorkloadSpec, run_cfpd
from ..core import DLB, Strategy, Team, build_parallel_for_graph
from ..machine import marenostrum4
from ..partition import dsatur_coloring, greedy_coloring
from ..sim import Engine
from ..smpi import World
from .common import format_table, large_load_spec, reference_workload

__all__ = ["ablate_mapping", "ablate_subdomains", "ablate_min_shared",
           "ablate_coloring", "ablate_dlb_policy", "ablate_scheduler",
           "AblationResult"]


@dataclass
class AblationResult:
    """Rows + formatting for one ablation."""

    title: str
    headers: list
    rows: list

    def format(self) -> str:
        """Plain-text table of the ablation rows."""
        return format_table(self.headers, self.rows, title=self.title)

    def to_rows(self) -> list:
        """Structured rows: header-keyed dict per swept configuration."""
        return [dict(zip(self.headers, row)) for row in self.rows]


def ablate_mapping(spec: WorkloadSpec | None = None) -> AblationResult:
    """Coupled-mode placement: block starves DLB, cyclic feeds it."""
    wl = reference_workload(spec or large_load_spec())
    rows = []
    for mapping in ("block", "cyclic"):
        times = {}
        borrowed = {}
        for dlb in (False, True):
            cfg = RunConfig(cluster="thunder", nranks=192, mode="coupled",
                            fluid_ranks=96, mapping=mapping, dlb=dlb,
                            assembly_strategy=Strategy.MULTIDEP,
                            sgs_strategy=Strategy.ATOMICS)
            res = run_cfpd(cfg, workload=wl)
            times[dlb] = res.total_time
            borrowed[dlb] = res.dlb_stats.cores_borrowed_total
        rows.append((mapping, f"{times[False] * 1e3:.3f}",
                     f"{times[True] * 1e3:.3f}",
                     f"{times[False] / times[True]:.2f}x",
                     borrowed[True]))
    return AblationResult(
        title="Coupled 96+96 on Thunder: process placement vs DLB",
        headers=["mapping", "orig (ms)", "DLB (ms)", "gain", "cores borrowed"],
        rows=rows)


def ablate_subdomains(spec: WorkloadSpec | None = None,
                      threads: int = 4) -> AblationResult:
    """Multidep assembly elapsed time vs subdomains-per-rank target."""
    wl = reference_workload(spec)
    rows = []
    for nsub in (8, 16, 32, 64, 128):
        cfg = RunConfig(cluster="marenostrum4", nranks=96 // threads,
                        threads_per_rank=threads,
                        assembly_strategy=Strategy.MULTIDEP,
                        sgs_strategy=Strategy.MULTIDEP,
                        subdomains_per_rank=nsub)
        res = run_cfpd(cfg, workload=wl)
        rows.append((nsub,
                     f"{res.phase_log.elapsed('assembly') * 1e6:.1f}"))
    return AblationResult(
        title=f"Multidep assembly elapsed (us) vs subdomains/rank "
              f"(MN4, {96 // threads}x{threads})",
        headers=["subdomains/rank", "assembly elapsed (us)"],
        rows=rows)


def ablate_min_shared(spec: WorkloadSpec | None = None) -> AblationResult:
    """Adjacency degree + assembly time vs the shared-node threshold."""
    wl = reference_workload(spec)
    rows = []
    for thr in (1, 2, 4, 6):
        dd = wl.decomposition(24, min_shared_nodes=thr)
        degrees = [len(a) for rw in dd.ranks for a in rw.sub_adjacency]
        cfg = RunConfig(cluster="marenostrum4", nranks=24,
                        threads_per_rank=4,
                        assembly_strategy=Strategy.MULTIDEP,
                        sgs_strategy=Strategy.MULTIDEP,
                        subdomain_min_shared=thr)
        res = run_cfpd(cfg, workload=wl)
        rows.append((thr, f"{np.mean(degrees):.1f}",
                     f"{res.phase_log.elapsed('assembly') * 1e6:.1f}"))
    return AblationResult(
        title="Multidep subdomain adjacency threshold (scale compensation)",
        headers=["min shared nodes", "avg degree", "assembly elapsed (us)"],
        rows=rows)


def ablate_coloring(spec: WorkloadSpec | None = None) -> AblationResult:
    """Greedy vs DSATUR coloring on airway rank domains."""
    wl = reference_workload(spec)
    dd = wl.decomposition(24)
    rows = []
    for name, algo in (("greedy", greedy_coloring),
                       ("dsatur", dsatur_coloring)):
        ncolors = []
        smallest_class = []
        for rw in dd.ranks[:8]:
            graph = wl.mesh.node_sharing_adjacency(rw.element_ids)
            colors = algo(graph)
            ncolors.append(colors.max() + 1)
            smallest_class.append(np.bincount(colors).min())
        rows.append((name, f"{np.mean(ncolors):.1f}",
                     f"{np.mean(smallest_class):.1f}"))
    return AblationResult(
        title="Element coloring algorithms on airway rank domains (24 ranks)",
        headers=["algorithm", "avg colors", "avg smallest class"],
        rows=rows)


def ablate_dlb_policy() -> AblationResult:
    """LeWI (lend all) vs LeWI-half on the Fig. 5 scenario (2x4 cores)."""
    rows = []
    for policy in ("lewi", "lewi_half"):
        engine = Engine()
        cluster = marenostrum4(num_nodes=1)
        world = World(engine, cluster, nranks=2)
        dlb = DLB(world, enabled=True, policy=policy)
        teams = {r: Team(engine, cluster.node.core, 4, rank=r)
                 for r in range(2)}
        for r, tm in teams.items():
            dlb.attach_team(r, tm)
        tasks = {0: 8, 1: 32}

        def program(comm):
            n = tasks[comm.rank]
            graph = build_parallel_for_graph(np.full(n, 5e6), 4,
                                             min_chunks=n)
            yield from teams[comm.rank].run(graph)
            yield from comm.barrier()

        world.run(world.launch(program))
        rows.append((policy, f"{engine.now * 1e3:.3f}",
                     dlb.stats.cores_borrowed_total,
                     dlb.stats.max_team_capacity))
    return AblationResult(
        title="DLB lend policy on the Fig. 5 scenario (2 ranks x 4 cores)",
        headers=["policy", "time (ms)", "cores borrowed", "peak team"],
        rows=rows)


def ablate_scheduler(spec: WorkloadSpec | None = None) -> AblationResult:
    """Team task-scheduler policy: LPT vs FIFO vs LIFO on the multidep
    assembly (the paper's runtime uses priority-aware scheduling; this
    quantifies how much the policy matters at our task granularity)."""
    wl = reference_workload(spec)
    rows = []
    for scheduler in Team.SCHEDULERS:
        cfg = RunConfig(cluster="marenostrum4", nranks=24,
                        threads_per_rank=4,
                        assembly_strategy=Strategy.MULTIDEP,
                        sgs_strategy=Strategy.MULTIDEP,
                        scheduler=scheduler)
        res = run_cfpd(cfg, workload=wl)
        rows.append((scheduler,
                     "%.1f" % (res.phase_log.elapsed("assembly") * 1e6),
                     "%.3f" % (res.total_time * 1e3)))
    return AblationResult(
        title="Team scheduler policy (MN4, 24x4, multidep)",
        headers=["scheduler", "assembly elapsed (us)", "total (ms)"],
        rows=rows)
