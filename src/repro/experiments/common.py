"""Shared helpers for the experiment runners (one per paper table/figure)."""

from __future__ import annotations

from typing import Iterable, Sequence

from ..app import (
    LARGE_PARTICLE_RATIO,
    SMALL_PARTICLE_RATIO,
    Workload,
    WorkloadSpec,
    get_workload,
)

__all__ = ["reference_spec", "small_load_spec", "large_load_spec",
           "paper_scale_spec", "reference_workload", "format_table"]


def reference_spec(**overrides) -> WorkloadSpec:
    """The default (scaled) respiratory workload used by every experiment."""
    return WorkloadSpec(**overrides)


def small_load_spec(**overrides) -> WorkloadSpec:
    """Workload with the paper's 4e5-particle load ratio."""
    overrides.setdefault("particle_ratio", SMALL_PARTICLE_RATIO)
    return WorkloadSpec(**overrides)


def large_load_spec(**overrides) -> WorkloadSpec:
    """Workload with the paper's 7e6-particle load ratio."""
    overrides.setdefault("particle_ratio", LARGE_PARTICLE_RATIO)
    return WorkloadSpec(**overrides)


def paper_scale_spec(**overrides) -> WorkloadSpec:
    """A workload at the paper's airway depth (7 bronchial generations,
    ~40k elements).  Several times slower than the reference spec — meant
    for one-off high-fidelity runs, not the benchmark suite."""
    overrides.setdefault("generations", 7)
    overrides.setdefault("points_per_ring", 8)
    return WorkloadSpec(**overrides)


def reference_workload(spec: WorkloadSpec | None = None) -> Workload:
    """Cached workload for ``spec`` (default: the reference spec)."""
    return get_workload(spec or reference_spec())


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Plain-text table (paper-style) from headers and row tuples."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
