"""Crash-safe append-only campaign journal.

One JSON line per event, flushed and fsync'd as it is written, so the
journal survives a ``kill -9`` mid-campaign with at most one torn trailing
line — which :func:`replay` tolerates (it stops at the first unparsable
line and flags ``truncated``).  The journal is the campaign's *progress*
record; the result store is its *content* record.  Resume needs only the
store (memoization skips finished cells), the journal is what lets
``campaign status`` tell an interrupted campaign from a finished one
without re-expanding anything.

Events (all carry ``seq`` and a wall-clock ``ts``; timestamps live only
here, never in store objects, so stores stay bit-identical across runs)::

    campaign_begin    {campaign, campaign_fingerprint, njobs}
    job_cached        {fingerprint, job_id}
    job_start         {fingerprint, job_id, attempt}
    job_done          {fingerprint, job_id, digest, elapsed}
    job_retry         {fingerprint, job_id, failure_class, error, attempt}
    job_failed        {fingerprint, job_id, failure_class, error}
    campaign_killed   {reason, completed}
    campaign_end      {executed, cached, failed, quarantined}

Supervised-pool events (see :mod:`repro.campaign.supervisor`)::

    worker_spawned    {worker}
    lease_granted     {fingerprint, job_id, worker, attempt, duration}
    lease_renewed     {fingerprint, worker, renewals}
    lease_expired     {fingerprint, job_id, worker, reason, renewals}
    job_quarantined   {fingerprint, job_id, failure_class, error,
                       attempts, worker_losses}

A ``lease_granted`` with no matching ``lease_expired`` / ``job_done`` /
``job_failed`` / ``job_quarantined`` is a **dangling lease** — the
campaign driver itself died with the job in flight (``campaign doctor``
flags these).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Journal", "JournalState", "replay"]

JOURNAL_VERSION = 1


class Journal:
    """Append-only JSONL writer (one fsync per event)."""

    def __init__(self, path: str):
        self.path = path
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._seq = _last_seq(path) + 1
        self._fh = open(path, "a")

    def append(self, event: str, **fields) -> None:
        line = {"seq": self._seq, "event": event,
                "version": JOURNAL_VERSION, "ts": round(time.time(), 3)}
        line.update(fields)
        self._fh.write(json.dumps(line, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._seq += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalState:
    """What a replayed journal says about campaign progress."""

    events: list = field(default_factory=list)
    campaign: Optional[str] = None
    campaign_fingerprint: Optional[str] = None
    njobs: int = 0
    done: dict = field(default_factory=dict)      # fingerprint -> digest
    cached: set = field(default_factory=set)
    failed: dict = field(default_factory=dict)    # fingerprint -> class
    quarantined: dict = field(default_factory=dict)  # fingerprint -> class
    retries: int = 0
    began: bool = False
    finished: bool = False
    killed: bool = False
    kill_reason: Optional[str] = None
    truncated: bool = False
    # supervised-pool liveness counters
    worker_spawns: int = 0
    lease_grants: int = 0
    lease_renewals: int = 0
    lease_expiries: int = 0
    active_leases: dict = field(default_factory=dict)  # fp -> worker

    @property
    def completed(self) -> int:
        return len(self.done) + len(self.cached)

    @property
    def in_progress(self) -> bool:
        return self.began and not self.finished

    @property
    def dangling_leases(self) -> dict:
        """Leases granted but never resolved — jobs in flight when the
        campaign driver died (``{fingerprint: worker}``)."""
        return dict(self.active_leases)

    def summary(self) -> dict:
        return {
            "campaign": self.campaign,
            "campaign_fingerprint": self.campaign_fingerprint,
            "njobs": self.njobs,
            "executed": len(self.done),
            "cached": len(self.cached),
            "failed": len(self.failed),
            "quarantined": len(self.quarantined),
            "retries": self.retries,
            "finished": self.finished,
            "killed": self.killed,
            "truncated": self.truncated,
            "worker_spawns": self.worker_spawns,
            "lease_grants": self.lease_grants,
            "lease_renewals": self.lease_renewals,
            "lease_expiries": self.lease_expiries,
            "dangling_leases": len(self.active_leases),
        }


def replay(path: str) -> JournalState:
    """Rebuild campaign progress from the journal; a torn trailing line
    (crash mid-append) truncates the replay instead of failing it."""
    state = JournalState()
    try:
        fh = open(path)
    except FileNotFoundError:
        return state
    with fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                line = json.loads(raw)
            except json.JSONDecodeError:
                state.truncated = True
                break
            state.events.append(line)
            event = line.get("event")
            if event == "campaign_begin":
                # a later begin supersedes (resume of the same store)
                state.campaign = line.get("campaign")
                state.campaign_fingerprint = \
                    line.get("campaign_fingerprint")
                state.njobs = int(line.get("njobs", 0))
                state.began = True
                state.finished = False
                state.killed = False
                state.done.clear()
                state.cached.clear()
                state.failed.clear()
                state.quarantined.clear()
                state.active_leases.clear()
            elif event == "job_cached":
                state.cached.add(line["fingerprint"])
            elif event == "job_done":
                state.done[line["fingerprint"]] = line.get("digest")
                state.failed.pop(line["fingerprint"], None)
                state.active_leases.pop(line["fingerprint"], None)
            elif event == "job_retry":
                state.retries += 1
            elif event == "job_failed":
                state.failed[line["fingerprint"]] = \
                    line.get("failure_class", "unknown")
                state.active_leases.pop(line["fingerprint"], None)
            elif event == "job_quarantined":
                state.quarantined[line["fingerprint"]] = \
                    line.get("failure_class", "unknown")
                state.active_leases.pop(line["fingerprint"], None)
            elif event == "worker_spawned":
                state.worker_spawns += 1
            elif event == "lease_granted":
                state.lease_grants += 1
                state.active_leases[line["fingerprint"]] = \
                    line.get("worker")
            elif event == "lease_renewed":
                state.lease_renewals += 1
            elif event == "lease_expired":
                state.lease_expiries += 1
                state.active_leases.pop(line["fingerprint"], None)
            elif event == "campaign_killed":
                state.killed = True
                state.kill_reason = line.get("reason")
            elif event == "campaign_end":
                state.finished = True
    return state


def _last_seq(path: str) -> int:
    last = -1
    try:
        with open(path) as fh:
            for raw in fh:
                try:
                    last = int(json.loads(raw).get("seq", last))
                except (json.JSONDecodeError, TypeError, ValueError):
                    break
    except FileNotFoundError:
        pass
    return last
