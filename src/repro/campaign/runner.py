"""Execute one campaign job and shape its result into a store record.

This is the *single* execution path: the experiment figure runners, the
``python -m repro campaign`` CLI and the worker-pool processes all call
:func:`run_job`.  A record carries everything aggregation needs — total
simulated time, per-phase elapsed/summary rows, POP efficiencies, solver
and deposition results — plus a ``simulated_digest`` over every
simulated-time output, the identity surface the determinism and resume
contracts are asserted on.

Records are deliberately wall-clock-free so store objects are bit-identical
across runs; execution timing belongs to the journal and the bench row.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..app import get_workload, run_cfpd
from . import serialize
from .spec import Job

__all__ = ["RECORD_SCHEMA", "job_record", "run_job", "simulated_digest",
           "warm_workload"]

RECORD_SCHEMA = "repro-campaign-job-v1"


def simulated_digest(result) -> str:
    """SHA-256 over every simulated-time output of a run.

    Same recipe as the perf bench's end-to-end digest: phase samples
    (rounded to sub-nanosecond), total time, deposition counts and solver
    results.  Two runs of the same cell must agree byte-for-byte.
    """
    h = hashlib.sha256()
    for s in result.phase_log.samples:
        h.update(repr((s.step, s.rank, s.phase,
                       round(s.t0, 12), round(s.t1, 12))).encode())
    h.update(repr(round(result.total_time, 12)).encode())
    h.update(repr(result.deposition).encode())
    h.update(repr(result.solver_info).encode())
    return h.hexdigest()


def job_record(job: Job, result) -> dict:
    """The store record for a completed job (plain JSON-able tree)."""
    log = result.phase_log
    pop = result.pop_metrics()
    metrics = {
        "total_time": result.total_time,
        "n_particles": result.n_particles,
        "phase_elapsed": {p: log.elapsed(p) for p in log.phases()},
        "phase_summary": result.phase_summary(),
        "pop": {
            "load_balance": pop.load_balance,
            "communication_efficiency": pop.communication_efficiency,
            "parallel_efficiency": pop.parallel_efficiency,
        },
        "solver_info": result.solver_info,
        "deposition": result.deposition,
    }
    if job.config.dlb:
        s = result.dlb_stats
        metrics["dlb"] = {
            "lend_events": s.lend_events,
            "borrow_events": s.borrow_events,
            "cores_lent_total": s.cores_lent_total,
            "cores_borrowed_total": s.cores_borrowed_total,
            "max_team_capacity": s.max_team_capacity,
        }
    if result.adaptive_diag:
        metrics["adaptive"] = result.adaptive_diag
    if result.cosim_diag:
        metrics["cosim"] = result.cosim_diag
    return serialize.plain({
        "schema": RECORD_SCHEMA,
        "fingerprint": job.fingerprint,
        "label": job.label(),
        "tags": dict(job.tags),
        "config": serialize.config_to_dict(job.config),
        "spec": serialize.spec_to_dict(job.spec),
        "fault_plan": serialize.plan_to_dict(job.fault_plan),
        "simulated_digest": simulated_digest(result),
        "metrics": metrics,
    })


def run_job(job: Job) -> dict:
    """Run one cell end to end and return its record.

    Module-level (picklable) so worker processes can execute it; the
    process-wide workload cache makes same-spec jobs within one worker
    share the numeric precompute.
    """
    workload = get_workload(job.spec)
    result = run_cfpd(job.config, workload=workload,
                      fault_plan=job.fault_plan)
    return job_record(job, result)


def warm_workload(spec, histogram_ranks: Optional[list] = None) -> None:
    """Precompute the numeric workload for ``spec`` in this process.

    Called by the executor before forking a pool so every worker inherits
    the warm cache instead of redoing the physics once per process.
    """
    wl = get_workload(spec)
    wl.operators()
    wl.solve_fluid_step()
    wl.sgs_history()
    wl.trajectory()
    for nranks in histogram_ranks or ():
        wl.particle_histograms(nranks)
