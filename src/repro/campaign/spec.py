"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a whole evaluation matrix — a base
:class:`~repro.app.RunConfig` / :class:`~repro.app.WorkloadSpec` pair plus
grid and list expansions over their fields — and expands deterministically
into :class:`Job` cells.  Each job carries a stable SHA-256 fingerprint of
its ``(config, spec, fault_plan)`` identity; the fingerprint is the key of
the content-addressed result store, so re-expanding the same campaign (or a
different campaign visiting the same cell) hits the cache.

Override keys are dotted field paths::

    config.nranks      -> dataclasses field of RunConfig
    spec.n_steps       -> dataclasses field of WorkloadSpec
    tags.role          -> descriptive metadata (NOT part of the fingerprint)
    fault_plan         -> {"seed": ..., "specs": [FaultSpec dicts]} per cell

``grid`` entries multiply (cartesian product, in declaration order);
``runs`` entries enumerate explicit cells.  When both are present every
explicit run is expanded by the full grid.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

from ..app import RunConfig, WorkloadSpec
from ..fault import FaultPlan
from . import serialize

__all__ = ["CampaignSpec", "Job"]


@dataclass(frozen=True)
class Job:
    """One expanded cell of a campaign: a fully materialized simulation."""

    index: int
    campaign: str
    config: RunConfig
    spec: WorkloadSpec
    fault_plan: Optional[FaultPlan] = None
    #: descriptive, sorted (key, value) pairs — reporting only, not identity
    tags: tuple = ()

    @property
    def job_id(self) -> str:
        return f"{self.campaign}-{self.index:04d}"

    @cached_property
    def fingerprint(self) -> str:
        """Stable SHA-256 identity of ``(config, spec, fault_plan)``."""
        return serialize.job_fingerprint(self.config, self.spec,
                                         self.fault_plan)

    def tag(self, key: str, default: Optional[str] = None) -> Optional[str]:
        for k, v in self.tags:
            if k == key:
                return v
        return default

    def label(self) -> str:
        """Human-readable descriptor (the config label by default)."""
        return self.tag("label") or self.config.label()


@dataclass
class CampaignSpec:
    """A declarative, deterministic description of a scenario sweep."""

    name: str
    base_config: RunConfig = field(default_factory=RunConfig)
    base_spec: WorkloadSpec = field(default_factory=WorkloadSpec)
    #: ordered (dotted key, list of values) pairs — cartesian product
    grid: list = field(default_factory=list)
    #: explicit override dicts, one per cell (before grid expansion)
    runs: list = field(default_factory=list)
    #: fault plan applied to every job (cells may override per-run)
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self):
        self.grid = [(str(k), list(vs)) for k, vs in
                     (self.grid.items() if isinstance(self.grid, dict)
                      else self.grid)]
        self.runs = [dict(r) for r in self.runs]
        for key, values in self.grid:
            self._check_key(key)
            if not values:
                raise ValueError(f"grid axis {key!r} has no values")
        for run in self.runs:
            for key in run:
                self._check_key(key)

    @staticmethod
    def _check_key(key: str) -> None:
        if key == "fault_plan" or key.startswith(("config.", "spec.",
                                                  "tags.")):
            return
        raise ValueError(
            f"unknown override key {key!r}; expected 'config.<field>', "
            f"'spec.<field>', 'tags.<name>' or 'fault_plan'")

    # -- expansion ----------------------------------------------------------

    def expand(self) -> list:
        """Deterministic job list: runs (declaration order) x grid
        (cartesian product, axes in declaration order)."""
        cells = self.runs or [{}]
        if self.grid:
            keys = [k for k, _ in self.grid]
            grid_cells = [dict(zip(keys, combo)) for combo in
                          itertools.product(*(vs for _, vs in self.grid))]
        else:
            grid_cells = [{}]
        jobs = []
        for cell in cells:
            for gcell in grid_cells:
                jobs.append(self._materialize(len(jobs), {**cell, **gcell}))
        return jobs

    def _materialize(self, index: int, overrides: dict) -> Job:
        config_d = serialize.config_to_dict(self.base_config)
        spec_d = serialize.spec_to_dict(self.base_spec)
        tags = {}
        plan = self.fault_plan
        for key, value in overrides.items():
            if key == "fault_plan":
                plan = serialize.plan_from_dict(value)
            elif key.startswith("config."):
                config_d[key[len("config."):]] = value
            elif key.startswith("spec."):
                spec_d[key[len("spec."):]] = value
            else:
                tags[key[len("tags."):]] = str(value)
        return Job(index=index, campaign=self.name,
                   config=serialize.config_from_dict(config_d),
                   spec=serialize.spec_from_dict(spec_d),
                   fault_plan=plan,
                   tags=tuple(sorted(tags.items())))

    @cached_property
    def fingerprint(self) -> str:
        """Identity of the whole matrix: SHA-256 over the job fingerprints
        (order-sensitive; the name stays out so renames don't invalidate)."""
        import hashlib

        digest = hashlib.sha256()
        for job in self.expand():
            digest.update(job.fingerprint.encode())
        return digest.hexdigest()

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base": {"config": serialize.config_to_dict(self.base_config),
                     "spec": serialize.spec_to_dict(self.base_spec)},
            "grid": [[k, vs] for k, vs in self.grid],
            "runs": self.runs,
            "fault_plan": serialize.plan_to_dict(self.fault_plan),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        base = data.get("base", {})
        config_d = serialize.config_to_dict(RunConfig())
        config_d.update(base.get("config", {}))
        spec_d = serialize.spec_to_dict(WorkloadSpec())
        spec_d.update(base.get("spec", {}))
        return cls(
            name=str(data.get("name", "campaign")),
            base_config=serialize.config_from_dict(config_d),
            base_spec=serialize.spec_from_dict(spec_d),
            grid=data.get("grid", []),
            runs=data.get("runs", []),
            fault_plan=serialize.plan_from_dict(data.get("fault_plan")))

    def to_file(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_file(cls, path: str) -> "CampaignSpec":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def with_spec_overrides(self, **spec_kwargs) -> "CampaignSpec":
        """A copy whose base workload spec has ``spec_kwargs`` replaced —
        the CLI's workload-size flags applied to a named campaign."""
        import dataclasses

        return dataclasses.replace(
            self, base_spec=dataclasses.replace(self.base_spec,
                                                **spec_kwargs))
