"""Injectable time sources for the campaign execution layer.

Everything in :mod:`repro.campaign` that waits — retry backoff, job
timeouts, lease deadlines, heartbeat liveness windows — reads time through
a :class:`Clock` instead of calling :mod:`time` directly.  Production runs
use the default :class:`WallClock`; chaos and retry tests inject a
:class:`VirtualClock` so exponential backoff and lease expiry happen in
*virtual* time and the test suite stops sleeping real wall seconds.

The clock only covers *orchestration* time.  Simulated physics time stays
on the DES engine, and store records remain wall-clock-free either way.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "WallClock", "VirtualClock"]


class Clock:
    """Minimal time-source protocol: ``now()`` and ``sleep(dt)``."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, dt: float) -> None:
        raise NotImplementedError


class WallClock(Clock):
    """Real monotonic time (the default)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, dt: float) -> None:
        if dt > 0:
            time.sleep(dt)


class VirtualClock(Clock):
    """Deterministic manual time: ``sleep`` advances instantly.

    ``auto_advance`` adds a fixed increment on every ``now()`` call, which
    lets liveness timeouts (lease expiry, heartbeat loss) trigger without
    any real waiting in tests that poll the clock in a loop.
    """

    def __init__(self, start: float = 0.0, auto_advance: float = 0.0):
        self._now = float(start)
        self.auto_advance = float(auto_advance)
        self.slept = 0.0          #: total virtual seconds spent in sleep()

    def now(self) -> float:
        self._now += self.auto_advance
        return self._now

    def sleep(self, dt: float) -> None:
        if dt > 0:
            self._now += dt
            self.slept += dt

    def advance(self, dt: float) -> None:
        """Manually move time forward (chaos-test control knob)."""
        self._now += float(dt)
