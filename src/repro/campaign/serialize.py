"""One serialization path for run configurations, workload specs and plans.

Everything the campaign layer persists — job fingerprints, result-store
records, spec files, the CLI's ``--json`` output — goes through the
functions here, so a configuration always round-trips to the *same* bytes:

* dataclasses are flattened to plain dicts (enums to their values, nested
  dataclasses recursively), rebuilt with full eager validation;
* :func:`canonical_json` renders any jsonable tree with sorted keys and
  fixed separators — the byte-stable form every SHA-256 fingerprint and
  every on-disk store object is computed from;
* :func:`fingerprint_payload` defines the identity of a simulation cell:
  ``(schema, RunConfig, WorkloadSpec, FaultPlan)`` and nothing else, so
  identical physics+runtime cells collide (memoize) across campaigns.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Optional

import numpy as np

from ..app import RunConfig, WorkloadSpec
from ..core import Strategy, StrategyParams
from ..fault import FaultPlan, FaultSpec

__all__ = [
    "FINGERPRINT_SCHEMA",
    "canonical_json",
    "config_from_dict",
    "config_to_dict",
    "fingerprint_payload",
    "job_fingerprint",
    "plan_from_dict",
    "plan_to_dict",
    "plain",
    "spec_from_dict",
    "spec_to_dict",
]

#: Bump when the fingerprint payload layout changes (invalidates stores).
FINGERPRINT_SCHEMA = 1


def plain(value: Any) -> Any:
    """Recursively convert ``value`` into plain JSON-able python.

    Handles numpy scalars/arrays, enums, dataclasses, and mappings — the
    kinds of values run results and configurations are made of.
    """
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [plain(v) for v in value.tolist()]
    if isinstance(value, Strategy):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: plain(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [plain(v) for v in value]
    raise TypeError(f"cannot serialize {type(value).__name__}: {value!r}")


def canonical_json(tree: Any) -> str:
    """The byte-stable JSON rendering (sorted keys, fixed separators)."""
    return json.dumps(plain(tree), sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


# -- RunConfig ---------------------------------------------------------------

def config_to_dict(config: RunConfig) -> dict:
    """Flatten a :class:`RunConfig` (enums to values, params to a dict)."""
    return plain(config)


def config_from_dict(data: dict) -> RunConfig:
    """Rebuild a :class:`RunConfig`; eager validation runs as usual."""
    kwargs = dict(data)
    _check_fields(RunConfig, kwargs, "config")
    for key in ("assembly_strategy", "sgs_strategy"):
        if key in kwargs and not isinstance(kwargs[key], Strategy):
            kwargs[key] = Strategy(kwargs[key])
    params = kwargs.get("strategy_params")
    if isinstance(params, dict):
        _check_fields(StrategyParams, params, "config.strategy_params")
        kwargs["strategy_params"] = StrategyParams(**params)
    return RunConfig(**kwargs)


# -- WorkloadSpec ------------------------------------------------------------

def spec_to_dict(spec: WorkloadSpec) -> dict:
    return plain(spec)


def spec_from_dict(data: dict) -> WorkloadSpec:
    kwargs = dict(data)
    _check_fields(WorkloadSpec, kwargs, "spec")
    return WorkloadSpec(**kwargs)


# -- FaultPlan ---------------------------------------------------------------

def plan_to_dict(plan: Optional[FaultPlan]) -> Optional[dict]:
    if plan is None:
        return None
    return {"seed": plan.seed, "specs": [plain(s) for s in plan.specs]}


def plan_from_dict(data: Optional[dict]) -> Optional[FaultPlan]:
    if data is None:
        return None
    if isinstance(data, FaultPlan):
        return data
    specs = []
    for entry in data.get("specs", ()):
        kwargs = dict(entry)
        _check_fields(FaultSpec, kwargs, "fault_plan.specs")
        specs.append(FaultSpec(**kwargs))
    return FaultPlan(specs=tuple(specs), seed=int(data.get("seed", 0)))


# -- fingerprints ------------------------------------------------------------

def fingerprint_payload(config: RunConfig, spec: WorkloadSpec,
                        fault_plan: Optional[FaultPlan] = None) -> dict:
    """The identity of one simulation cell — what memoization keys on.

    Campaign names, job indices and descriptive tags stay *out* so the same
    cell reached from different campaigns shares one store object (e.g.
    Fig. 6 and Fig. 7 sweep identical configurations and differ only in
    which phase they read).
    """
    return {
        "schema": FINGERPRINT_SCHEMA,
        "config": config_to_dict(config),
        "spec": spec_to_dict(spec),
        "fault_plan": plan_to_dict(fault_plan),
    }


def job_fingerprint(config: RunConfig, spec: WorkloadSpec,
                    fault_plan: Optional[FaultPlan] = None) -> str:
    """SHA-256 of the canonical fingerprint payload."""
    payload = canonical_json(fingerprint_payload(config, spec, fault_plan))
    return hashlib.sha256(payload.encode()).hexdigest()


def _check_fields(cls, kwargs: dict, where: str) -> None:
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(kwargs) - known)
    if unknown:
        raise ValueError(
            f"unknown {where} field(s) {unknown}; "
            f"available: {sorted(known)}")
