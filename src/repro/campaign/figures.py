"""The paper's evaluation matrix as campaign specs.

The figure runners in :mod:`repro.experiments` used to sweep their
configurations with ad-hoc loops; the grids now live here as
:class:`~repro.campaign.spec.CampaignSpec` builders so experiments, the
``campaign`` CLI and the benchmarks share one execution path *and* one
memoization domain — Fig. 6 and Fig. 7 expand to identical cells (they
differ only in which phase they read), so running one makes the other a
100% cache hit.
"""

from __future__ import annotations

from typing import Optional

from ..app import LARGE_PARTICLE_RATIO, SMALL_PARTICLE_RATIO, RunConfig, \
    WorkloadSpec
from ..core import Strategy
from ..cosim import VENTILATION_PATTERNS
from .spec import CampaignSpec

__all__ = ["BUILTIN_CAMPAIGNS", "CLUSTER_TOTALS", "COUPLED_SPLITS",
           "adaptive_dlb_campaign", "breathing_campaign",
           "ci_smoke_campaign", "demo_campaign", "dlb_figure_campaign",
           "get_campaign", "hybrid_sweep_campaign"]

#: Total cores used per cluster in the paper's Fig. 6/7 sweeps.
CLUSTER_TOTALS = {"marenostrum4": 96, "thunder": 192}

#: Fluid+particle rank splits swept per cluster (nranks = cluster cores).
COUPLED_SPLITS = {
    "marenostrum4": (48, 64, 80),
    "thunder": (96, 128, 160),
}

_HYBRID_STRATEGIES = ("atomics", "coloring", "multidep")
_HYBRID_THREADS = (1, 2, 4)


def hybrid_sweep_campaign(spec: Optional[WorkloadSpec] = None,
                          totals: Optional[dict] = None,
                          name: str = "hybrid-sweep") -> CampaignSpec:
    """The Fig. 6/7 matrix: per cluster, the pure-MPI baseline plus
    {atomics, coloring, multidep} x {1, 2, 4} threads at constant cores.

    Phase-agnostic on purpose: the same cells serve the assembly figure
    (Fig. 6) and the SGS figure (Fig. 7).
    """
    runs = []
    for cluster, total in (totals or CLUSTER_TOTALS).items():
        runs.append({
            "config.cluster": cluster, "config.nranks": total,
            "config.threads_per_rank": 1,
            "config.assembly_strategy": "mpionly",
            "config.sgs_strategy": "mpionly",
            "tags.cluster": cluster, "tags.role": "baseline",
            "tags.strategy": "mpionly", "tags.threads": "1",
        })
        for strategy in _HYBRID_STRATEGIES:
            for threads in _HYBRID_THREADS:
                runs.append({
                    "config.cluster": cluster,
                    "config.nranks": total // threads,
                    "config.threads_per_rank": threads,
                    "config.assembly_strategy": strategy,
                    "config.sgs_strategy": strategy,
                    "tags.cluster": cluster, "tags.role": "hybrid",
                    "tags.strategy": strategy, "tags.threads": str(threads),
                })
    return CampaignSpec(name=name, base_config=RunConfig(),
                        base_spec=spec or WorkloadSpec(), runs=runs)


def dlb_figure_campaign(cluster: str, spec: Optional[WorkloadSpec] = None,
                        total: Optional[int] = None,
                        splits: Optional[tuple] = None,
                        name: Optional[str] = None) -> CampaignSpec:
    """One of Figs. 8-11: {sync, coupled splits} x {DLB off, on} on one
    cluster (multidep assembly + atomics SGS, as in the paper)."""
    total = total if total is not None else CLUSTER_TOTALS[cluster]
    splits = splits if splits is not None else COUPLED_SPLITS[cluster]
    runs = [{"config.mode": "sync", "config.fluid_ranks": 0,
             "tags.split": "sync", "tags.label": f"sync {total}"}]
    runs += [{"config.mode": "coupled", "config.fluid_ranks": f,
              "tags.split": str(f), "tags.label": f"{f}+{total - f}"}
             for f in splits]
    return CampaignSpec(
        name=name or f"dlb-{cluster}",
        base_config=RunConfig(cluster=cluster, nranks=total,
                              threads_per_rank=1,
                              assembly_strategy=Strategy.MULTIDEP,
                              sgs_strategy=Strategy.ATOMICS),
        base_spec=spec or WorkloadSpec(),
        runs=runs,
        grid=[("config.dlb", [False, True])])


def adaptive_dlb_campaign(cluster: str = "thunder",
                          spec: Optional[WorkloadSpec] = None,
                          total: Optional[int] = None,
                          name: Optional[str] = None) -> CampaignSpec:
    """The adaptive-Δt x DLB interaction study (ROADMAP item).

    {fixed Δt, local adaptive} x {DLB off, on} on a transient sine-inflow
    workload: local mode drives time-varying per-rank subcycle counts —
    an imbalance profile that shifts every global step, which is exactly
    the regime LeWI-style lending targets.  The ``spec.adaptive`` axis
    rides the generic ``"spec.<field>"`` override path, so the campaign
    stays a thin declarative grid.
    """
    total = total if total is not None else CLUSTER_TOTALS[cluster]
    base = spec if spec is not None \
        else WorkloadSpec(inlet_waveform="sine", n_steps=32)
    return CampaignSpec(
        name=name or f"adaptive-dlb-{cluster}",
        base_config=RunConfig(cluster=cluster, nranks=total,
                              threads_per_rank=1,
                              assembly_strategy=Strategy.MULTIDEP,
                              sgs_strategy=Strategy.ATOMICS),
        base_spec=base,
        grid=[("spec.adaptive", ["off", "local"]),
              ("config.dlb", [False, True])])


def breathing_campaign(cluster: str = "thunder",
                       spec: Optional[WorkloadSpec] = None,
                       total: Optional[int] = None,
                       patterns=None,
                       cpaps=(0.0, 1.0),
                       diameters=(2e-6, 8e-6),
                       tidal_volumes=None,
                       name: Optional[str] = None) -> CampaignSpec:
    """Deposition fraction per breathing pattern (the cosim family).

    One run cell per named ventilation pattern of
    :data:`repro.cosim.VENTILATION_PATTERNS` (the per-pattern parameter
    overrides ride the ``"spec.<field>"`` path, tagged with the pattern
    name), crossed with a CPAP-pressure x particle-diameter grid (plus an
    optional tidal-volume axis).  The base workload couples the
    ventilator through the buffered hub (``inlet_waveform="ventilator"``)
    with injection gated to inhalation and the CFL ladder consuming the
    transient (``adaptive="global"``); the fixed-grid horizon (4096 steps
    of 1e-4 s) is long enough for deposition to actually happen under
    breathing-scaled carrier flow, so the fractions differentiate the
    patterns.  Deposition is a workload (rank-independent) quantity, so
    the default rank count is a quarter of the cluster — pass ``total``
    for the full-machine runtime study.
    """
    total = total if total is not None else CLUSTER_TOTALS[cluster] // 4
    base = spec if spec is not None else WorkloadSpec(
        inlet_waveform="ventilator", injection_phase="inhale",
        adaptive="global", n_steps=4096, injection_interval=1024)
    runs = []
    for pname in (patterns if patterns is not None
                  else tuple(VENTILATION_PATTERNS)):
        cell = {f"spec.{field}": value
                for field, value in VENTILATION_PATTERNS[pname].items()}
        cell["tags.pattern"] = pname
        runs.append(cell)
    grid = [("spec.cpap", list(cpaps)),
            ("spec.particle_diameter", list(diameters))]
    if tidal_volumes:
        grid.insert(0, ("spec.tidal_volume", list(tidal_volumes)))
    return CampaignSpec(
        name=name or f"breathing-{cluster}",
        base_config=RunConfig(cluster=cluster, nranks=total,
                              threads_per_rank=1,
                              assembly_strategy=Strategy.MULTIDEP,
                              sgs_strategy=Strategy.ATOMICS),
        base_spec=base,
        runs=runs,
        grid=grid)


def demo_campaign(spec: Optional[WorkloadSpec] = None) -> CampaignSpec:
    """A small but non-trivial sweep for the quickstart example: rank
    counts x DLB on a single Thunder node."""
    return CampaignSpec(
        name="demo",
        base_config=RunConfig(cluster="thunder", num_nodes=1,
                              threads_per_rank=2),
        base_spec=spec or WorkloadSpec(generations=3, points_per_ring=6,
                                       n_steps=4),
        grid=[("config.nranks", [4, 8]),
              ("config.dlb", [False, True])])


def ci_smoke_campaign(spec: Optional[WorkloadSpec] = None) -> CampaignSpec:
    """The CI smoke grid: 4 tiny jobs (2 rank counts x DLB off/on)."""
    return CampaignSpec(
        name="ci-smoke",
        base_config=RunConfig(cluster="thunder", num_nodes=1,
                              threads_per_rank=1),
        base_spec=spec or WorkloadSpec(generations=2, points_per_ring=6,
                                       n_steps=2),
        grid=[("config.nranks", [2, 4]),
              ("config.dlb", [False, True])])


BUILTIN_CAMPAIGNS = {
    "demo": demo_campaign,
    "ci-smoke": ci_smoke_campaign,
    "fig6": lambda spec=None: hybrid_sweep_campaign(spec, name="fig6"),
    "fig7": lambda spec=None: hybrid_sweep_campaign(spec, name="fig7"),
    "fig8": lambda spec=None: dlb_figure_campaign(
        "marenostrum4", _load(spec, SMALL_PARTICLE_RATIO), name="fig8"),
    "fig9": lambda spec=None: dlb_figure_campaign(
        "thunder", _load(spec, SMALL_PARTICLE_RATIO), name="fig9"),
    "fig10": lambda spec=None: dlb_figure_campaign(
        "marenostrum4", _load(spec, LARGE_PARTICLE_RATIO), name="fig10"),
    "fig11": lambda spec=None: dlb_figure_campaign(
        "thunder", _load(spec, LARGE_PARTICLE_RATIO), name="fig11"),
    "adaptive-dlb": lambda spec=None: adaptive_dlb_campaign(
        "thunder", spec, name="adaptive-dlb"),
    "breathing": lambda spec=None: breathing_campaign(
        "thunder", spec, name="breathing"),
}


def _load(spec: Optional[WorkloadSpec], ratio: float) -> WorkloadSpec:
    import dataclasses

    return dataclasses.replace(spec or WorkloadSpec(),
                               particle_ratio=ratio)


def get_campaign(name: str,
                 spec: Optional[WorkloadSpec] = None) -> CampaignSpec:
    """A built-in campaign by name (optionally over a custom workload)."""
    try:
        builder = BUILTIN_CAMPAIGNS[name]
    except KeyError:
        raise KeyError(f"unknown campaign {name!r}; available: "
                       f"{sorted(BUILTIN_CAMPAIGNS)}") from None
    return builder(spec)
