"""Campaign-level aggregation: roll per-job metrics into one report.

Pulls every record of a campaign from the result store and condenses the
per-job :mod:`repro.trace` POP efficiencies and phase timings into a
campaign report — one row per cell plus matrix-wide aggregates (mean/min
POP efficiencies, per-phase mean time share, fastest/slowest cell).

When the campaign ran supervised, the report also carries a
**degraded-completion** section: quarantined cells with their failure
classes (from the store's quarantine area), and the lease-churn /
retry / heartbeat counters (from the journal replay or the just-finished
run's supervision stats).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .spec import CampaignSpec
from .store import ResultStore

__all__ = ["CampaignReport", "build_report"]


@dataclass
class CampaignReport:
    """Aggregated view of one campaign's completed cells."""

    name: str
    campaign_fingerprint: str
    rows: list = field(default_factory=list)
    #: fingerprints the store has no record for yet
    pending: list = field(default_factory=list)
    summary: dict = field(default_factory=dict)
    #: degraded-completion info: quarantined cells + supervision counters
    degraded: dict = field(default_factory=dict)

    def to_rows(self) -> list:
        """Structured rows (one dict per completed cell)."""
        return self.rows

    def format(self) -> str:
        """Human-readable report."""
        from ..experiments.common import format_table

        table = [(r["job_id"], r["label"],
                  f"{r['total_time'] * 1e3:.3f}",
                  f"{r['load_balance']:.2f}",
                  f"{r['communication_efficiency']:.2f}",
                  f"{r['parallel_efficiency']:.2f}",
                  r["simulated_digest"][:12])
                 for r in self.rows]
        lines = [format_table(
            ["job", "configuration", "time (ms)", "LB", "CommE", "PE",
             "digest"],
            table, title=f"Campaign {self.name!r} "
                         f"({self.campaign_fingerprint[:12]})")]
        s = self.summary
        if s:
            lines.append("")
            lines.append(
                f"{s['completed']}/{s['jobs']} cells complete; POP mean "
                f"LB={s['mean_load_balance']:.2f} "
                f"CommE={s['mean_communication_efficiency']:.2f} "
                f"PE={s['mean_parallel_efficiency']:.2f}")
            if s.get("fastest"):
                lines.append(
                    f"fastest {s['fastest']['label']} "
                    f"({s['fastest']['total_time'] * 1e3:.3f} ms), "
                    f"slowest {s['slowest']['label']} "
                    f"({s['slowest']['total_time'] * 1e3:.3f} ms)")
            shares = s.get("mean_phase_percent", {})
            if shares:
                lines.append("mean time share: " + ", ".join(
                    f"{p} {v:.1f}%" for p, v in shares.items()))
        if self.pending:
            lines.append(f"pending: {len(self.pending)} cell(s) not in "
                         f"the store yet")
        lines.extend(self._format_degraded())
        return "\n".join(lines)

    def _format_degraded(self) -> list:
        d = self.degraded
        if not d:
            return []
        lines = []
        quarantined = d.get("quarantined", [])
        if quarantined:
            lines.append(f"DEGRADED COMPLETION: {len(quarantined)} "
                         f"quarantined cell(s)")
            for q in quarantined:
                lines.append(
                    f"  {q.get('job_id', q['fingerprint'][:12])} "
                    f"[{q.get('failure_class', 'unknown')}] after "
                    f"{q.get('attempts', '?')} attempt(s): "
                    f"{q.get('error', '')}")
        sup = d.get("supervision")
        if sup:
            lines.append(
                f"lease churn: {sup.get('lease_grants', 0)} grants, "
                f"{sup.get('lease_renewals', 0)} renewals, "
                f"{sup.get('lease_expiries', 0)} expiries; "
                f"{sup.get('retries', 0)} retries "
                f"({sup.get('backoff_total', 0.0):.2f}s backoff); "
                f"{sup.get('heartbeats', 0)} heartbeats, "
                f"{sup.get('worker_spawns', 0)} worker spawns, "
                f"{sup.get('worker_losses', 0)} losses")
        return lines


def build_report(campaign: CampaignSpec, store: ResultStore,
                 run: Optional[object] = None,
                 journal_state: Optional[object] = None) -> CampaignReport:
    """Aggregate ``campaign`` from ``store`` (or a just-finished run's
    in-memory records when no store was used).  ``run`` and/or a replayed
    ``journal_state`` feed the degraded-completion section (quarantined
    cells, lease churn, retry totals)."""
    jobs = campaign.expand()
    records = {}
    if run is not None:
        records.update({o.fingerprint: o.record for o in run.outcomes
                        if o.record is not None})
    rows = []
    pending = []
    for job in jobs:
        record = records.get(job.fingerprint)
        if record is None and store is not None:
            record = store.get(job.fingerprint)
        if record is None:
            pending.append(job.fingerprint)
            continue
        m = record["metrics"]
        rows.append({
            "job_id": job.job_id,
            "fingerprint": job.fingerprint,
            "label": record.get("label", job.label()),
            "tags": dict(job.tags),
            "total_time": m["total_time"],
            "load_balance": m["pop"]["load_balance"],
            "communication_efficiency":
                m["pop"]["communication_efficiency"],
            "parallel_efficiency": m["pop"]["parallel_efficiency"],
            "phase_elapsed": m["phase_elapsed"],
            "phase_summary": m["phase_summary"],
            "simulated_digest": record["simulated_digest"],
        })
    summary = _summarize(jobs, rows)
    degraded = _degraded(store, run, journal_state)
    return CampaignReport(name=campaign.name,
                          campaign_fingerprint=campaign.fingerprint,
                          rows=rows, pending=pending, summary=summary,
                          degraded=degraded)


def _degraded(store, run, journal_state) -> dict:
    degraded: dict = {}
    quarantined = []
    if store is not None:
        quarantined = store.quarantined()
    elif run is not None:
        quarantined = [
            {"fingerprint": o.fingerprint, "job_id": o.job.job_id,
             "failure_class": o.failure_class, "error": o.error,
             "attempts": o.attempts}
            for o in run.outcomes if o.status == "quarantined"]
    if quarantined:
        degraded["quarantined"] = quarantined
    supervision = None
    if run is not None and getattr(run, "supervision", None):
        supervision = dict(run.supervision)
    elif journal_state is not None and \
            getattr(journal_state, "lease_grants", 0):
        supervision = {
            "lease_grants": journal_state.lease_grants,
            "lease_renewals": journal_state.lease_renewals,
            "lease_expiries": journal_state.lease_expiries,
            "worker_spawns": journal_state.worker_spawns,
            "retries": journal_state.retries,
        }
    if supervision:
        degraded["supervision"] = supervision
    return degraded


def _summarize(jobs, rows) -> dict:
    summary = {"jobs": len(jobs), "completed": len(rows),
               "pending": len(jobs) - len(rows)}
    if not rows:
        return summary
    def mean(key):
        return sum(r[key] for r in rows) / len(rows)

    summary["mean_load_balance"] = mean("load_balance")
    summary["mean_communication_efficiency"] = \
        mean("communication_efficiency")
    summary["mean_parallel_efficiency"] = mean("parallel_efficiency")
    summary["min_parallel_efficiency"] = \
        min(r["parallel_efficiency"] for r in rows)
    fastest = min(rows, key=lambda r: r["total_time"])
    slowest = max(rows, key=lambda r: r["total_time"])
    summary["fastest"] = {"label": fastest["label"],
                          "total_time": fastest["total_time"]}
    summary["slowest"] = {"label": slowest["label"],
                          "total_time": slowest["total_time"]}
    shares: dict = {}
    for r in rows:
        for entry in r["phase_summary"]:
            shares.setdefault(entry["phase"], []).append(
                entry["percent_time"])
    summary["mean_phase_percent"] = {
        p: sum(vs) / len(vs) for p, vs in shares.items()}
    return summary
