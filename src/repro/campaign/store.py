"""Content-addressed on-disk result store.

Completed jobs are memoized by their fingerprint: one canonical-JSON object
file per fingerprint under ``objects/<fp[:2]>/<fp>.json``.  Records carry
no wall-clock material, so the *bytes* of an object are a pure function of
the job identity and the simulation code — two independent runs of the
same campaign produce bit-identical stores, which is what the cross-run
identity check (:func:`cross_run_identity`) and the resume-after-kill test
lean on.

Writes are crash-safe: the record lands in a temp file in the final
directory and is published with :func:`os.replace` after an fsync, so a
killed campaign never leaves a torn object — only missing ones, which the
next run simply recomputes.  A crash *between* the temp write and the
rename leaves an orphaned ``.tmp-*`` file; opening a store sweeps those
away (counted in :meth:`ResultStore.stats` as ``orphans_removed``).

Besides the content-addressed objects the store keeps a **quarantine**
area (``quarantine/<fp>.json``): poison jobs — cells that repeatedly
crashed their workers — are parked there with their failure taxonomy by
the supervisor instead of failing the campaign.  Quarantine records carry
run metadata (attempt counts, loss reasons), live outside ``objects/``,
and therefore stay out of the bit-identity surface; a later successful
run of the cell clears its quarantine record.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Iterator, Optional

from . import serialize

__all__ = ["ResultStore", "StoreError", "cross_run_identity"]


class StoreError(RuntimeError):
    """A store object could not be read or written."""


class ResultStore:
    """Content-addressed store of completed job records."""

    def __init__(self, root: str):
        self.root = root
        self.objects_dir = os.path.join(root, "objects")
        self.quarantine_dir = os.path.join(root, "quarantine")
        os.makedirs(self.objects_dir, exist_ok=True)
        #: orphaned ``.tmp-*`` files (crash mid-``put``) swept at open
        self.orphans_removed = self._sweep_orphans()

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.objects_dir, fingerprint[:2],
                            f"{fingerprint}.json")

    def _quarantine_path(self, fingerprint: str) -> str:
        return os.path.join(self.quarantine_dir, f"{fingerprint}.json")

    def _sweep_orphans(self) -> int:
        """Remove temp files a crash during :meth:`put` left behind.

        Objects are only ever published via ``os.replace``, so any
        ``.tmp-*`` file found at open time belongs to a writer that died
        mid-write — its record was never durable and its cell will simply
        be recomputed.
        """
        removed = 0
        for base in (self.objects_dir, self.quarantine_dir):
            for dirpath, _dirnames, filenames in os.walk(base):
                for name in filenames:
                    if name.startswith(".tmp-"):
                        try:
                            os.unlink(os.path.join(dirpath, name))
                            removed += 1
                        except OSError:  # pragma: no cover - racing sweep
                            pass
        return removed

    # -- reads --------------------------------------------------------------

    def __contains__(self, fingerprint: str) -> bool:
        return os.path.exists(self._path(fingerprint))

    def get(self, fingerprint: str) -> Optional[dict]:
        """The stored record for ``fingerprint``, or None on a miss."""
        path = self._path(fingerprint)
        try:
            with open(path) as fh:
                record = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"corrupt store object {path!r}: {exc}") \
                from exc
        if record.get("fingerprint") != fingerprint:
            raise StoreError(
                f"store object {path!r} claims fingerprint "
                f"{record.get('fingerprint')!r}")
        return record

    def fingerprints(self) -> Iterator[str]:
        """Every stored fingerprint (sorted, for determinism)."""
        for shard in sorted(os.listdir(self.objects_dir)):
            shard_dir = os.path.join(self.objects_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[:-len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.fingerprints())

    def digest_map(self) -> dict:
        """{fingerprint: simulated digest} over the whole store — the
        cross-run identity surface."""
        return {fp: self.get(fp)["simulated_digest"]
                for fp in self.fingerprints()}

    def stats(self) -> dict:
        nbytes = 0
        count = 0
        for fp in self.fingerprints():
            nbytes += os.path.getsize(self._path(fp))
            count += 1
        return {"objects": count, "bytes": nbytes, "root": self.root,
                "orphans_removed": self.orphans_removed,
                "quarantined": len(self.quarantined())}

    # -- writes -------------------------------------------------------------

    def put(self, record: dict) -> str:
        """Atomically publish ``record`` (canonical JSON); returns its path.

        Idempotent: re-putting the same fingerprint overwrites with
        identical bytes (records are deterministic).
        """
        fingerprint = record.get("fingerprint")
        if not fingerprint:
            raise StoreError("record has no fingerprint")
        if "simulated_digest" not in record:
            raise StoreError("record has no simulated_digest")
        path = self._path(fingerprint)
        self._atomic_write(path, serialize.canonical_json(record) + "\n")
        return path

    def _atomic_write(self, path: str, payload: str) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise StoreError(f"cannot write store object {path!r}: {exc}") \
                from exc

    # -- quarantine ---------------------------------------------------------

    def quarantine_put(self, record: dict) -> str:
        """Park a poison-job record (atomically, like an object write)."""
        fingerprint = record.get("fingerprint")
        if not fingerprint:
            raise StoreError("quarantine record has no fingerprint")
        path = self._quarantine_path(fingerprint)
        self._atomic_write(path, serialize.canonical_json(record) + "\n")
        return path

    def quarantined(self) -> list:
        """Every parked quarantine record, sorted by fingerprint."""
        records = []
        try:
            names = sorted(os.listdir(self.quarantine_dir))
        except FileNotFoundError:
            return records
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.quarantine_dir, name)
            try:
                with open(path) as fh:
                    records.append(json.load(fh))
            except (OSError, json.JSONDecodeError) as exc:
                raise StoreError(
                    f"corrupt quarantine record {path!r}: {exc}") from exc
        return records

    def clear_quarantine(self, fingerprint: str) -> bool:
        """Un-park a cell (e.g. after it finally completed); True if a
        record was removed."""
        try:
            os.unlink(self._quarantine_path(fingerprint))
            return True
        except FileNotFoundError:
            return False


def cross_run_identity(a: ResultStore, b: ResultStore) -> dict:
    """Compare the simulated digests of two stores (two runs of the same
    campaign, or a resumed vs an uninterrupted one).

    Returns ``{"identical": bool, "mismatched": [...], "only_a": [...],
    "only_b": [...]}``.
    """
    da, db = a.digest_map(), b.digest_map()
    mismatched = sorted(fp for fp in da.keys() & db.keys()
                        if da[fp] != db[fp])
    only_a = sorted(da.keys() - db.keys())
    only_b = sorted(db.keys() - da.keys())
    return {
        "identical": not (mismatched or only_a or only_b),
        "mismatched": mismatched,
        "only_a": only_a,
        "only_b": only_b,
    }
