"""Store/journal integrity verification (``campaign doctor``).

After a crash — of a worker, of the campaign driver, of the machine — the
doctor answers "is this store safe to resume from, and what happened?":

* every content-addressed object must parse and claim its own fingerprint
  (:class:`~repro.campaign.store.StoreError` checks);
* every ``job_done`` journal line must have a durable store object whose
  simulated digest matches — the crash-safety contract (store before
  journal) makes any violation real damage, not an artifact of timing;
* a torn journal tail (crash mid-append) and dangling leases (jobs in
  flight when the driver died) are flagged;
* orphaned ``.tmp-*`` files from a crash mid-``put`` are swept by the
  store itself at open; the doctor reports the count as a repair.

Quarantined cells are reported as degraded-completion notes, not damage:
the quarantine did its job.  Exit contract of the CLI wrapper: 0 when
clean (repairs and notes allowed), 1 on damage.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .journal import replay
from .store import ResultStore, StoreError

__all__ = ["DoctorReport", "diagnose"]


@dataclass
class DoctorReport:
    """What the doctor found: damage fails the exit code, notes do not."""

    store_root: str
    problems: list = field(default_factory=list)
    repairs: list = field(default_factory=list)
    notes: list = field(default_factory=list)
    objects_checked: int = 0
    journal_events: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> dict:
        return {
            "store": self.store_root,
            "ok": self.ok,
            "objects_checked": self.objects_checked,
            "journal_events": self.journal_events,
            "problems": list(self.problems),
            "repairs": list(self.repairs),
            "notes": list(self.notes),
        }

    def format(self) -> str:
        lines = [f"campaign doctor: {self.store_root}",
                 f"  {self.objects_checked} store object(s) checked, "
                 f"{self.journal_events} journal event(s) replayed"]
        for repair in self.repairs:
            lines.append(f"  repaired: {repair}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        for problem in self.problems:
            lines.append(f"  DAMAGE: {problem}")
        lines.append("  verdict: " + ("clean" if self.ok else
                                      f"{len(self.problems)} problem(s)"))
        return "\n".join(lines)


def diagnose(store_root: str) -> DoctorReport:
    """Run every integrity check against the store rooted at
    ``store_root`` and its ``journal.jsonl``."""
    report = DoctorReport(store_root=store_root)
    store = ResultStore(store_root)
    if store.orphans_removed:
        report.repairs.append(
            f"removed {store.orphans_removed} orphaned temp file(s) left "
            f"by a crash during a store write")

    # -- objects: parseable, self-consistent ---------------------------------
    digests = {}
    for fp in store.fingerprints():
        try:
            digests[fp] = store.get(fp)["simulated_digest"]
        except StoreError as exc:
            report.problems.append(str(exc))
        report.objects_checked += 1

    # -- quarantine: report, don't fail --------------------------------------
    try:
        quarantined = store.quarantined()
    except StoreError as exc:
        quarantined = []
        report.problems.append(str(exc))
    for q in quarantined:
        report.notes.append(
            f"quarantined cell {q.get('job_id', '?')} "
            f"({q.get('fingerprint', '?')[:12]}) "
            f"[{q.get('failure_class', 'unknown')}] after "
            f"{q.get('attempts', '?')} attempt(s)")

    # -- journal: torn tail, dangling leases, done-but-missing ---------------
    journal_path = os.path.join(store_root, "journal.jsonl")
    state = replay(journal_path)
    report.journal_events = len(state.events)
    if not state.began:
        report.notes.append("no campaign journal (store-only check)")
        return report
    if state.truncated:
        report.problems.append(
            "torn journal tail: the last line is unparsable (crash "
            "mid-append); replay stops before it")
    for fp, worker in sorted(state.dangling_leases.items()):
        report.problems.append(
            f"dangling lease on {fp[:12]} (worker {worker}): the job was "
            f"in flight when the campaign driver died — resume to "
            f"reclaim it")
    for fp, digest in sorted(state.done.items()):
        if fp not in digests:
            report.problems.append(
                f"journal says {fp[:12]} is done but the store has no "
                f"object for it (crash-safety violation)")
        elif digest is not None and digests[fp] != digest:
            report.problems.append(
                f"digest mismatch on {fp[:12]}: journal {digest[:12]} vs "
                f"store {digests[fp][:12]}")
    if state.killed:
        report.notes.append(
            f"campaign was killed ({state.kill_reason}) — resumable")
    elif not state.finished:
        report.notes.append("campaign did not finish — resumable")
    return report
