"""Concurrent, memoizing, crash-safe campaign execution.

``run_campaign`` drives a :class:`~repro.campaign.spec.CampaignSpec`
through the store/journal machinery:

* cells whose fingerprint is already in the store are **cache hits** —
  re-running an identical campaign performs zero new simulations;
* pending cells run either inline (``workers=0``, the deterministic serial
  path the figure runners use), under the **supervised worker pool**
  (``workers=N`` — lease-based work claiming, heartbeat liveness and
  poison-job quarantine, see :mod:`repro.campaign.supervisor`), or one
  fresh cold process per job (``fresh_process_per_job=True`` — the
  pre-campaign "ad-hoc script per cell" execution model, kept as the
  bench baseline);
* failures are classified against the :mod:`repro.fault` /
  :mod:`repro.smpi` failure taxonomy: only *transient* classes (worker
  crash, timeout) retry, with exponential backoff — a deterministic
  simulated kill or a config error would fail identically forever;
* every completion is published atomically to the store and journaled
  before the next job is scheduled, so a campaign killed mid-flight
  resumes exactly where it stopped.

All orchestration waiting (retry backoff, job timeouts, lease deadlines)
reads time through an injectable :class:`~repro.campaign.clock.Clock`, so
chaos and retry tests run in virtual time instead of sleeping real wall
seconds.

Campaign-level crash injection reuses the :class:`repro.fault.FaultPlan`
vocabulary: ``job_kill`` specs act at the *orchestration* level — the
campaign aborts with :class:`~repro.smpi.JobKilledError` after ``count``
completed jobs (power loss / wall-clock limit on the sweep driver), which
is exactly what the resume-after-kill test injects.  The orchestration
kinds (``worker_kill``, ``heartbeat_loss``, ``worker_wedge``) target
individual pool workers instead and are handled by the supervisor.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..fault import CheckpointError, FaultPlan
from ..smpi import JobKilledError, MPIError, RankDeadError
from .clock import Clock, WallClock
from .journal import Journal
from .runner import run_job, warm_workload
from .spec import CampaignSpec, Job
from .store import ResultStore
from .supervisor import SupervisorConfig

__all__ = ["CampaignRun", "JobOutcome", "QUARANTINE_SCHEMA",
           "classify_failure", "run_campaign"]

#: Exponential-backoff cap between retry attempts [s].
BACKOFF_CAP = 1.0

#: Schema tag of quarantine records parked in the store.
QUARANTINE_SCHEMA = "repro-campaign-quarantine-v1"


def classify_failure(exc: BaseException) -> str:
    """Map an exception onto the campaign failure taxonomy.

    ``transient``       — worker-process crash or timeout; a retry may
                          succeed (the simulation itself is deterministic,
                          the *execution environment* is not);
    ``simulated_kill``  — the job's own fault plan killed the simulated
                          run (:class:`JobKilledError`); deterministic, a
                          retry would die identically;
    ``config``          — invalid configuration or checkpoint mismatch;
    ``fault``           — a simulated MPI-level failure escaped (e.g. rank
                          death without fault tolerance); deterministic;
    ``interrupted``     — a non-``Exception`` :class:`BaseException`
                          (``KeyboardInterrupt``, ``SystemExit``):
                          somebody *asked* the job to stop — never retried.

    A directly-unclassifiable exception is traced through its ``__cause__``
    / ``__context__`` chain (``raise X from Y``), so a transient root cause
    wrapped in a generic error still retries.
    """
    label = _classify_one(exc)
    if label != "unknown":
        return label
    seen = {id(exc)}
    cause = exc.__cause__ if exc.__cause__ is not None else exc.__context__
    while cause is not None and id(cause) not in seen:
        seen.add(id(cause))
        label = _classify_one(cause)
        if label != "unknown":
            return label
        cause = cause.__cause__ if cause.__cause__ is not None \
            else cause.__context__
    return "unknown"


def _classify_one(exc: BaseException) -> str:
    if isinstance(exc, JobKilledError):
        return "simulated_kill"
    if isinstance(exc, (RankDeadError, MPIError)):
        return "fault"
    if isinstance(exc, (CheckpointError, ValueError, TypeError, KeyError)):
        return "config"
    if isinstance(exc, (BrokenExecutor, FutureTimeoutError, TimeoutError,
                        OSError)):
        return "transient"
    if not isinstance(exc, Exception):
        return "interrupted"
    return "unknown"


@dataclass
class JobOutcome:
    """How one cell of the campaign ended."""

    job: Job
    status: str            # "done" | "cached" | "failed" | "quarantined"
    record: Optional[dict] = None
    error: Optional[str] = None
    failure_class: Optional[str] = None
    attempts: int = 0

    @property
    def fingerprint(self) -> str:
        return self.job.fingerprint


@dataclass
class CampaignRun:
    """Result of one ``run_campaign`` invocation."""

    campaign: str
    campaign_fingerprint: str
    outcomes: list = field(default_factory=list)
    #: supervised-pool liveness counters (lease churn, heartbeats, backoff)
    supervision: Optional[dict] = None

    def _count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def executed(self) -> int:
        return self._count("done")

    @property
    def cached(self) -> int:
        return self._count("cached")

    @property
    def failed(self) -> int:
        return self._count("failed")

    @property
    def quarantined(self) -> int:
        return self._count("quarantined")

    @property
    def ok(self) -> bool:
        return self.failed == 0 and self.quarantined == 0

    def records(self) -> list:
        """Records of every completed cell, in campaign order."""
        return [o.record for o in self.outcomes if o.record is not None]

    def digest_map(self) -> dict:
        return {o.fingerprint: o.record["simulated_digest"]
                for o in self.outcomes if o.record is not None}

    def stats(self) -> dict:
        stats = {"jobs": len(self.outcomes), "executed": self.executed,
                 "cached": self.cached, "failed": self.failed,
                 "quarantined": self.quarantined}
        if self.supervision is not None:
            stats["supervision"] = dict(self.supervision)
        return stats


class _KillGate:
    """Campaign-level ``job_kill`` injection: abort the orchestration after
    ``spec.count`` completed (executed, non-cached) jobs."""

    def __init__(self, plan: Optional[FaultPlan]):
        self._after = sorted(s.count for s in plan.for_kind("job_kill")) \
            if plan is not None else []
        self.completed = 0

    def on_job_done(self) -> None:
        self.completed += 1
        if self._after and self.completed >= self._after[0]:
            raise JobKilledError(
                f"campaign killed by injection after "
                f"{self.completed} completed jobs", float(self.completed))


def _default_mp_context():
    """Fork where available (workers inherit the warm workload cache),
    spawn otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix
        return multiprocessing.get_context("spawn")


def run_campaign(campaign: CampaignSpec,
                 store: Optional[ResultStore] = None,
                 workers: int = 0, *,
                 job_timeout: Optional[float] = None,
                 max_retries: int = 2,
                 backoff_base: float = 0.05,
                 fresh_process_per_job: bool = False,
                 kill_plan: Optional[FaultPlan] = None,
                 journal: Optional[Journal] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 clock: Optional[Clock] = None,
                 supervision: Optional[SupervisorConfig] = None
                 ) -> CampaignRun:
    """Run every cell of ``campaign``, memoized against ``store``.

    ``workers=0`` runs inline (serial, deterministic order); ``workers>=1``
    uses the supervised worker pool (leases, heartbeats, quarantine — see
    :mod:`repro.campaign.supervisor`, tunable via ``supervision``);
    ``fresh_process_per_job`` runs each job serially in a cold spawned
    process instead.  ``kill_plan`` injects orchestration faults:
    campaign-level ``job_kill`` (see :class:`_KillGate`, raises
    :class:`JobKilledError` *after* the journal records the kill so a
    resume picks up exactly where it stopped) and the per-worker kinds
    (``worker_kill`` / ``heartbeat_loss`` / ``worker_wedge``, supervised
    pool only).  ``clock`` injects the orchestration time source (backoff,
    timeouts, leases) — pass a :class:`~repro.campaign.clock.VirtualClock`
    to run retries/chaos in virtual time.
    """
    jobs = campaign.expand()
    run = CampaignRun(campaign=campaign.name,
                      campaign_fingerprint=campaign.fingerprint)
    if clock is None:
        clock = WallClock()
    if supervision is None:
        supervision = SupervisorConfig()
    own_journal = journal is None and store is not None
    if own_journal:
        import os

        journal = Journal(os.path.join(store.root, "journal.jsonl"))
    if journal is not None:
        journal.append("campaign_begin", campaign=campaign.name,
                       campaign_fingerprint=run.campaign_fingerprint,
                       njobs=len(jobs))
    gate = _KillGate(kill_plan)
    try:
        _execute(jobs, run, store, journal, gate, workers=workers,
                 job_timeout=job_timeout, max_retries=max_retries,
                 backoff_base=backoff_base,
                 fresh_process_per_job=fresh_process_per_job,
                 progress=progress, clock=clock, supervision=supervision,
                 kill_plan=kill_plan)
        if journal is not None:
            journal.append("campaign_end", **run.stats())
    except JobKilledError as exc:
        if journal is not None:
            journal.append("campaign_killed", reason=exc.reason,
                           completed=gate.completed)
        raise
    finally:
        if own_journal:
            journal.close()
    return run


def _execute(jobs, run, store, journal, gate, *, workers, job_timeout,
             max_retries, backoff_base, fresh_process_per_job, progress,
             clock, supervision, kill_plan):
    pending = []
    seen: dict = {}
    for job in jobs:
        fp = job.fingerprint
        if fp in seen:  # duplicate cell within the campaign: share outcome
            run.outcomes.append(seen[fp])
            continue
        record = store.get(fp) if store is not None else None
        if record is not None:
            outcome = JobOutcome(job=job, status="cached", record=record)
            if journal is not None:
                journal.append("job_cached", fingerprint=fp,
                               job_id=job.job_id)
            _say(progress, f"{job.job_id}: cached ({fp[:12]})")
        else:
            outcome = JobOutcome(job=job, status="pending")
            pending.append(outcome)
        run.outcomes.append(outcome)
        seen[fp] = outcome

    if not pending:
        return
    if workers >= 1 and not fresh_process_per_job:
        _execute_supervised(pending, run, store, journal, gate,
                            workers=workers, job_timeout=job_timeout,
                            max_retries=max_retries,
                            backoff_base=backoff_base, progress=progress,
                            clock=clock, supervision=supervision,
                            kill_plan=kill_plan)
    else:
        _execute_serial(pending, store, journal, gate,
                        fresh_process=fresh_process_per_job,
                        job_timeout=job_timeout, max_retries=max_retries,
                        backoff_base=backoff_base, progress=progress,
                        clock=clock)


def _execute_serial(pending, store, journal, gate, *, fresh_process,
                    job_timeout, max_retries, backoff_base, progress,
                    clock):
    for outcome in pending:
        _run_with_retries(outcome, journal, max_retries=max_retries,
                          backoff_base=backoff_base, job_timeout=job_timeout,
                          fresh_process=fresh_process, clock=clock)
        _publish(outcome, store, journal, gate, progress)


def _execute_supervised(pending, run, store, journal, gate, *, workers,
                        job_timeout, max_retries, backoff_base, progress,
                        clock, supervision, kill_plan):
    """The supervised pool: leases, heartbeats, reclamation, quarantine."""
    from .supervisor import Supervisor

    ctx = _default_mp_context()
    if ctx.get_start_method() == "fork":
        # workers inherit these precomputes through the fork
        for spec in {o.job.spec for o in pending}:
            warm_workload(spec)
    sup = Supervisor(pending, store, journal, gate, workers=workers,
                     mp_context=ctx, config=supervision, clock=clock,
                     max_retries=max_retries, backoff_base=backoff_base,
                     job_timeout=job_timeout, fault_plan=kill_plan,
                     progress=progress)
    run.supervision = sup.stats
    sup.run()


def _run_with_retries(outcome, journal, *, max_retries, backoff_base,
                      job_timeout, fresh_process, clock):
    job = outcome.job
    for attempt in range(1, max_retries + 2):
        outcome.attempts = attempt
        if journal is not None:
            journal.append("job_start", fingerprint=outcome.fingerprint,
                           job_id=job.job_id, attempt=attempt)
        try:
            if fresh_process:
                outcome.record = _run_in_fresh_process(job, job_timeout)
            else:
                outcome.record = run_job(job)
            outcome.status = "done"
            return
        except Exception as exc:  # noqa: BLE001 - classified below
            failure = classify_failure(exc)
            if failure == "transient" and attempt <= max_retries:
                if journal is not None:
                    journal.append("job_retry",
                                   fingerprint=outcome.fingerprint,
                                   job_id=job.job_id, failure_class=failure,
                                   error=str(exc), attempt=attempt)
                clock.sleep(min(BACKOFF_CAP,
                                backoff_base * 2 ** (attempt - 1)))
                continue
            outcome.status = "failed"
            outcome.error = str(exc)
            outcome.failure_class = failure
            if journal is not None:
                journal.append("job_failed", fingerprint=outcome.fingerprint,
                               job_id=job.job_id, failure_class=failure,
                               error=str(exc))
            return


def _run_in_fresh_process(job: Job, job_timeout: Optional[float]) -> dict:
    """One cold spawned process per job — the ad-hoc-script execution
    model the campaign layer replaces (every job pays interpreter start,
    imports and the full numeric precompute; nothing is reused)."""
    ctx = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
        return pool.submit(run_job, job).result(timeout=job_timeout)


def _publish(outcome, store, journal, gate, progress) -> None:
    """Store + journal one finished outcome, then let the kill gate act.

    The order is the crash-safety contract: the record is durable *before*
    the journal line, and both land before the gate may abort the
    campaign — so anything the journal claims finished is in the store.
    """
    if outcome.status == "failed":
        _say(progress, f"{outcome.job.job_id}: FAILED "
                       f"[{outcome.failure_class}] {outcome.error}")
        return
    if store is not None:
        store.put(outcome.record)
        store.clear_quarantine(outcome.fingerprint)
    if journal is not None:
        journal.append("job_done", fingerprint=outcome.fingerprint,
                       job_id=outcome.job.job_id,
                       digest=outcome.record["simulated_digest"])
    _say(progress, f"{outcome.job.job_id}: done "
                   f"({outcome.record['simulated_digest'][:12]})")
    gate.on_job_done()


def _say(progress, message: str) -> None:
    if progress is not None:
        progress(message)
