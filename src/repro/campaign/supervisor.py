"""Supervised campaign execution: leases, heartbeats, quarantine.

The supervisor replaces the fire-and-forget ``ProcessPoolExecutor`` pool
for ``run_campaign(workers>=1)``.  It owns its worker processes and hands
each job over under a **time-bounded lease**:

* ``lease_granted``   — the job is sent to a worker over its pipe; the
  lease carries a deadline (``lease_duration`` on the injected clock);
* ``lease_renewed``   — each worker heartbeat (a background thread in the
  worker, one beat per ``heartbeat_interval``) pushes the deadline out,
  up to ``max_lease_renewals`` renewals;
* ``lease_expired``   — the worker died (process sentinel), went silent
  (no heartbeat within ``heartbeat_timeout``), wedged (renewal budget
  exhausted) or overran ``job_timeout``.  The worker is SIGKILLed, the
  job is requeued with backoff, and pool capacity is respawned.

A job that costs ``poison_attempts`` workers their lives is **poison**: it
is parked in the store's quarantine area with its failure taxonomy instead
of failing the whole campaign — every other cell still executes and the
run completes with ``ok == False``.

Because completed records are published atomically to the content-addressed
store *before* they are journaled, and a reclaimed job re-executes the same
deterministic simulation, a ``kill -9`` of any worker at any moment yields
a final store bit-identical to an undisturbed run.

Orchestration faults (:data:`repro.fault.ORCHESTRATION_KINDS`) trigger on
the 1-based lease-grant sequence number, so chaos scenarios replay
deterministically: ``worker_kill`` SIGKILLs the grantee the moment the
lease is granted, ``heartbeat_loss`` makes it go silent, ``worker_wedge``
makes it heartbeat forever without finishing.
"""

from __future__ import annotations

import heapq
import itertools
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait
from typing import Optional

from .clock import Clock, WallClock

__all__ = ["SupervisorConfig", "Supervisor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables of the supervision layer (all seconds are orchestration
    wall time, read through the injected clock where noted)."""

    #: worker → supervisor beat period (real time, inside the worker)
    heartbeat_interval: float = 0.25
    #: kill a leased worker silent for this long (clock time)
    heartbeat_timeout: float = 2.0
    #: lease length; every accepted heartbeat renews it (clock time)
    lease_duration: float = 2.0
    #: heartbeats allowed to renew one lease (None = unbounded); a worker
    #: that exhausts the budget without finishing is wedged
    max_lease_renewals: Optional[int] = None
    #: worker losses one job may cause before it is quarantined
    poison_attempts: int = 3
    #: supervisor pipe-wait granularity (real time)
    poll_interval: float = 0.05


@dataclass
class _Lease:
    outcome: object                  # the JobOutcome being executed
    granted_at: float                # clock time of the grant
    deadline: float                  # clock time the lease expires
    grant_seq: int                   # 1-based global grant counter
    renewals: int = 0


@dataclass
class _Worker:
    wid: str
    proc: object                     # multiprocessing Process
    conn: object                     # supervisor end of the duplex pipe
    last_beat: float                 # clock time of the last sign of life
    lease: Optional[_Lease] = None
    eof: bool = False


class Supervisor:
    """Drives pending job outcomes through a supervised worker pool."""

    def __init__(self, pending, store, journal, gate, *, workers: int,
                 mp_context, config: SupervisorConfig, clock: Clock = None,
                 max_retries: int = 2, backoff_base: float = 0.05,
                 job_timeout: Optional[float] = None, fault_plan=None,
                 progress=None):
        from .executor import BACKOFF_CAP  # late: avoid circular import

        self._backoff_cap = BACKOFF_CAP
        self.queue = deque(pending)
        self.store = store
        self.journal = journal
        self.gate = gate
        self.target_workers = max(1, min(workers, len(pending) or 1))
        self.ctx = mp_context
        self.config = config
        self.clock = clock if clock is not None else WallClock()
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.job_timeout = job_timeout
        self.progress = progress
        self.workers: dict[str, _Worker] = {}
        self.retry_heap: list = []           # (ready clock time, tie, outcome)
        self._tie = itertools.count()
        self.remaining = len(pending)
        self.attempts: dict[str, int] = {}   # fingerprint -> starts
        self.crashes: dict[str, int] = {}    # fingerprint -> worker losses
        self.grant_seq = 0
        self._wid = itertools.count()
        self._orch = {}                      # grant seq -> fault kind
        if fault_plan is not None:
            for spec in fault_plan.orchestration():
                self._orch[spec.count] = spec.kind
        #: lease churn / liveness counters (the degraded-completion report)
        self.stats = {
            "workers": self.target_workers,
            "lease_grants": 0, "lease_renewals": 0, "lease_expiries": 0,
            "worker_spawns": 0, "worker_losses": 0,
            "heartbeats": 0, "retries": 0, "backoff_total": 0.0,
            "quarantined": 0,
        }

    # -- main loop ----------------------------------------------------------

    def run(self) -> None:
        try:
            while self.remaining > 0:
                self._promote_due_retries()
                self._schedule()
                self._wait_and_drain()
                self._check_liveness()
        finally:
            self._shutdown()

    # -- worker lifecycle ---------------------------------------------------

    def _spawn(self) -> _Worker:
        wid = f"w{next(self._wid)}"
        parent, child = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(
            target=_worker_main,
            args=(wid, child, self.config.heartbeat_interval),
            name=f"campaign-{wid}", daemon=True)
        proc.start()
        child.close()
        worker = _Worker(wid=wid, proc=proc, conn=parent,
                         last_beat=self.clock.now())
        self.workers[wid] = worker
        self.stats["worker_spawns"] += 1
        self._journal("worker_spawned", worker=wid)
        return worker

    def _kill_worker(self, worker: _Worker) -> None:
        proc = worker.proc
        if proc.is_alive():
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (OSError, TypeError):  # pragma: no cover - already gone
                pass
        proc.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _shutdown(self) -> None:
        for worker in list(self.workers.values()):
            try:
                worker.conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in list(self.workers.values()):
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                self._kill_worker(worker)
            else:
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover
                    pass
        self.workers.clear()

    # -- scheduling ---------------------------------------------------------

    def _promote_due_retries(self) -> None:
        now = self.clock.now()
        while self.retry_heap and self.retry_heap[0][0] <= now:
            _, _, outcome = heapq.heappop(self.retry_heap)
            self.queue.append(outcome)
        # nothing runnable, nothing running — jump to the next retry
        if not self.queue and self.retry_heap and not self._busy():
            ready = self.retry_heap[0][0]
            self.clock.sleep(max(0.0, ready - now))
            while self.retry_heap and self.retry_heap[0][0] <= \
                    self.clock.now():
                _, _, outcome = heapq.heappop(self.retry_heap)
                self.queue.append(outcome)

    def _busy(self) -> bool:
        return any(w.lease is not None for w in self.workers.values())

    def _idle_workers(self):
        return [w for w in self.workers.values()
                if w.lease is None and w.proc.is_alive() and not w.eof]

    def _schedule(self) -> None:
        while self.queue:
            idle = self._idle_workers()
            if not idle:
                if len(self.workers) < self.target_workers:
                    idle = [self._spawn()]
                else:
                    return
            self._grant(idle[0], self.queue.popleft())

    def _grant(self, worker: _Worker, outcome) -> None:
        fp = outcome.fingerprint
        attempt = self.attempts.get(fp, 0) + 1
        self.attempts[fp] = attempt
        self.grant_seq += 1
        self.stats["lease_grants"] += 1
        fault = self._orch.pop(self.grant_seq, None)
        flags = {}
        if fault == "heartbeat_loss":
            flags["hang_silent"] = True
        elif fault == "worker_wedge":
            flags["wedge"] = True
        now = self.clock.now()
        self._journal("lease_granted", fingerprint=fp,
                      job_id=outcome.job.job_id, worker=worker.wid,
                      attempt=attempt,
                      duration=self.config.lease_duration)
        try:
            worker.conn.send({"job": outcome.job, "flags": flags})
        except (OSError, ValueError, BrokenPipeError):
            # the worker died between scheduling and the send: treat it as
            # a crash of this lease — requeue and respawn
            worker.lease = _Lease(outcome=outcome, granted_at=now,
                                  deadline=now, grant_seq=self.grant_seq)
            self._lose_worker(worker, "worker_death")
            return
        worker.lease = _Lease(
            outcome=outcome, granted_at=now,
            deadline=now + self.config.lease_duration,
            grant_seq=self.grant_seq)
        worker.last_beat = now
        if fault == "worker_kill":
            # deterministic chaos: the grantee dies with the job in flight
            try:
                os.kill(worker.proc.pid, signal.SIGKILL)
            except OSError:  # pragma: no cover
                pass

    # -- pipe draining ------------------------------------------------------

    def _wait_and_drain(self) -> None:
        live = [w for w in self.workers.values()
                if not w.eof and not w.conn.closed]
        if not live:
            return
        waitables = [w.conn for w in live] + [w.proc.sentinel for w in live]
        try:
            _conn_wait(waitables, timeout=self.config.poll_interval)
        except OSError:  # pragma: no cover - race with a dying worker
            pass
        for worker in live:
            self._drain(worker)

    def _drain(self, worker: _Worker) -> None:
        while not worker.eof:
            try:
                if not worker.conn.poll():
                    return
                msg = worker.conn.recv()
            except (EOFError, OSError):
                worker.eof = True
                return
            self._handle_message(worker, msg)

    def _handle_message(self, worker: _Worker, msg) -> None:
        kind, fp, payload = msg
        lease = worker.lease
        if kind == "heartbeat":
            self.stats["heartbeats"] += 1
            worker.last_beat = self.clock.now()
            if lease is not None and lease.outcome.fingerprint == fp:
                budget = self.config.max_lease_renewals
                if budget is None or lease.renewals < budget:
                    lease.renewals += 1
                    lease.deadline = worker.last_beat + \
                        self.config.lease_duration
                    self.stats["lease_renewals"] += 1
                    self._journal("lease_renewed", fingerprint=fp,
                                  worker=worker.wid,
                                  renewals=lease.renewals)
            return
        if lease is None or lease.outcome.fingerprint != fp:
            return  # stale result from a lease already expired
        outcome = lease.outcome
        worker.lease = None
        if kind == "done":
            outcome.status = "done"
            outcome.record = payload
            outcome.attempts = self.attempts[fp]
            self.remaining -= 1
            self._publish(outcome)
        elif kind == "error":
            self._handle_job_error(outcome, payload)

    # -- failure handling ---------------------------------------------------

    def _handle_job_error(self, outcome, exc: BaseException) -> None:
        from .executor import classify_failure

        fp = outcome.fingerprint
        failure = classify_failure(exc)
        attempt = self.attempts[fp]
        if failure == "transient" and attempt <= self.max_retries:
            self._retry(outcome, failure, str(exc), attempt)
            return
        outcome.status = "failed"
        outcome.error = str(exc)
        outcome.failure_class = failure
        outcome.attempts = attempt
        self.remaining -= 1
        self._journal("job_failed", fingerprint=fp,
                      job_id=outcome.job.job_id, failure_class=failure,
                      error=str(exc))
        self._say(f"{outcome.job.job_id}: FAILED [{failure}] {exc}")

    def _retry(self, outcome, failure: str, error: str,
               attempt: int) -> None:
        fp = outcome.fingerprint
        self.stats["retries"] += 1
        self._journal("job_retry", fingerprint=fp,
                      job_id=outcome.job.job_id, failure_class=failure,
                      error=error, attempt=attempt)
        backoff = min(self._backoff_cap,
                      self.backoff_base * 2 ** (attempt - 1))
        self.stats["backoff_total"] += backoff
        heapq.heappush(self.retry_heap,
                       (self.clock.now() + backoff, next(self._tie),
                        outcome))

    def _lose_worker(self, worker: _Worker, reason: str) -> None:
        """A leased worker is gone/silent/wedged: kill it, reclaim the job,
        respawn capacity."""
        lease = worker.lease
        worker.lease = None
        self._kill_worker(worker)
        self.workers.pop(worker.wid, None)
        self.stats["worker_losses"] += 1
        if lease is None:
            return
        outcome = lease.outcome
        fp = outcome.fingerprint
        self.stats["lease_expiries"] += 1
        self._journal("lease_expired", fingerprint=fp,
                      job_id=outcome.job.job_id, worker=worker.wid,
                      reason=reason, renewals=lease.renewals)
        self._say(f"{outcome.job.job_id}: lease expired ({reason}, "
                  f"worker {worker.wid})")
        crashes = self.crashes.get(fp, 0) + 1
        self.crashes[fp] = crashes
        if crashes >= self.config.poison_attempts:
            self._quarantine(outcome, reason)
        else:
            self._retry(outcome, "worker_crash",
                        f"worker {worker.wid} lost: {reason}",
                        self.attempts[fp])

    def _quarantine(self, outcome, reason: str) -> None:
        from .executor import QUARANTINE_SCHEMA

        fp = outcome.fingerprint
        outcome.status = "quarantined"
        outcome.failure_class = "worker_crash"
        outcome.error = (f"poison job: crashed {self.crashes[fp]} "
                         f"worker(s), last loss: {reason}")
        outcome.attempts = self.attempts[fp]
        self.remaining -= 1
        self.stats["quarantined"] += 1
        record = {
            "schema": QUARANTINE_SCHEMA,
            "fingerprint": fp,
            "job_id": outcome.job.job_id,
            "failure_class": outcome.failure_class,
            "error": outcome.error,
            "attempts": outcome.attempts,
            "worker_losses": self.crashes[fp],
        }
        if self.store is not None:
            self.store.quarantine_put(record)
        self._journal("job_quarantined", **record)
        self._say(f"{outcome.job.job_id}: QUARANTINED after "
                  f"{outcome.attempts} attempt(s) "
                  f"[{outcome.failure_class}] {outcome.error}")

    # -- liveness -----------------------------------------------------------

    def _check_liveness(self) -> None:
        now = self.clock.now()
        for worker in list(self.workers.values()):
            self._drain(worker)  # a buffered result beats the post-mortem
            if not worker.proc.is_alive() or worker.eof:
                if worker.lease is not None:
                    self._lose_worker(worker, "worker_death")
                else:
                    self._kill_worker(worker)
                    self.workers.pop(worker.wid, None)
                continue
            lease = worker.lease
            if lease is None:
                continue
            if self.job_timeout is not None and \
                    now - lease.granted_at > self.job_timeout:
                self._lose_worker(worker, "job_timeout")
            elif now > lease.deadline:
                budget = self.config.max_lease_renewals
                if budget is not None and lease.renewals >= budget:
                    self._lose_worker(worker, "renewals_exhausted")
                elif now - worker.last_beat >= \
                        self.config.heartbeat_timeout:
                    self._lose_worker(worker, "heartbeat_timeout")
                # else: the deadline lapsed but the worker went quiet only
                # recently — grace until the silence window closes

    # -- publication --------------------------------------------------------

    def _publish(self, outcome) -> None:
        """Store before journal before the kill gate — the crash-safety
        order (anything the journal claims done is durable in the store)."""
        if self.store is not None:
            self.store.put(outcome.record)
            self.store.clear_quarantine(outcome.fingerprint)
        self._journal("job_done", fingerprint=outcome.fingerprint,
                      job_id=outcome.job.job_id,
                      digest=outcome.record["simulated_digest"])
        self._say(f"{outcome.job.job_id}: done "
                  f"({outcome.record['simulated_digest'][:12]})")
        self.gate.on_job_done()

    # -- helpers ------------------------------------------------------------

    def _journal(self, event: str, **fields) -> None:
        if self.journal is not None:
            self.journal.append(event, **fields)

    def _say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)


# -- worker side -------------------------------------------------------------

def _heartbeat_loop(conn, lock, stop, interval: float, fp: str) -> None:
    while not stop.wait(interval):
        with lock:
            if stop.is_set():
                return
            try:
                conn.send(("heartbeat", fp, None))
            except (OSError, ValueError, BrokenPipeError):
                return


def _worker_main(wid: str, conn, heartbeat_interval: float) -> None:
    """Worker process loop: receive a job envelope, heartbeat while
    executing it, send back ``("done", fp, record)`` or
    ``("error", fp, exception)``.

    Looks ``run_job`` up through :mod:`repro.campaign.runner` on every job
    so fork-inherited monkeypatches apply (the chaos tests lean on this).
    ``flags`` carry the injected orchestration faults: ``hang_silent``
    (no heartbeats, never finishes) and ``wedge`` (heartbeats forever,
    never finishes).
    """
    from . import runner

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if msg is None:
            return
        job, flags = msg["job"], msg.get("flags") or {}
        fp = job.fingerprint
        stop = threading.Event()
        lock = threading.Lock()
        if not flags.get("hang_silent"):
            threading.Thread(
                target=_heartbeat_loop,
                args=(conn, lock, stop, heartbeat_interval, fp),
                daemon=True).start()
        try:
            if flags.get("wedge") or flags.get("hang_silent"):
                while True:          # stuck until the supervisor SIGKILLs
                    time.sleep(3600)
            payload = ("done", fp, runner.run_job(job))
        except BaseException as exc:  # noqa: BLE001 - classified upstream
            payload = ("error", fp, exc)
        finally:
            stop.set()
        with lock:
            try:
                conn.send(payload)
            except (OSError, ValueError, BrokenPipeError):
                return
            except Exception:
                # unpicklable exception object: degrade to its repr
                conn.send(("error", fp,
                           RuntimeError(f"unserializable worker failure: "
                                        f"{payload[2]!r}")))
