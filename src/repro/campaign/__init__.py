"""Concurrent scenario-sweep orchestration (`repro.campaign`).

Turns the paper's evaluation matrix into a declarative, concurrent,
resumable service:

* :mod:`~repro.campaign.spec` — :class:`CampaignSpec` expands grid/list
  definitions over :class:`~repro.app.RunConfig` /
  :class:`~repro.app.WorkloadSpec` / :class:`~repro.fault.FaultPlan`
  fields into deterministic :class:`Job` cells with stable SHA-256
  fingerprints;
* :mod:`~repro.campaign.store` — content-addressed on-disk result store:
  completed cells are memoized by fingerprint (an identical campaign
  re-run is a 100% cache hit) and store objects are bit-identical across
  runs, the cross-run identity surface;
* :mod:`~repro.campaign.executor` — serial / supervised-pool execution
  with per-job timeouts, fault-aware retry/backoff over the
  :mod:`repro.fault` failure taxonomy, and campaign-level ``job_kill``
  injection;
* :mod:`~repro.campaign.supervisor` — lease-based work claiming with
  heartbeat liveness: dead/silent/wedged workers are detected, their jobs
  reclaimed, capacity respawned, and poison jobs quarantined instead of
  failing the campaign;
* :mod:`~repro.campaign.journal` — crash-safe append-only progress
  journal, so a killed campaign resumes exactly where it stopped;
* :mod:`~repro.campaign.clock` — injectable orchestration time (virtual
  clocks for chaos/retry tests);
* :mod:`~repro.campaign.aggregate` — rolls per-job POP metrics and phase
  timers into a campaign-level report (plus a degraded-completion
  section);
* :mod:`~repro.campaign.doctor` — store/journal integrity verification;
* :mod:`~repro.campaign.figures` — the paper's figure sweeps (Figs. 6-11)
  as thin campaign specs over the same runner.

CLI: ``python -m repro campaign run|status|resume|report|doctor``.
"""

from .aggregate import CampaignReport, build_report
from .clock import Clock, VirtualClock, WallClock
from .doctor import DoctorReport, diagnose
from .executor import (
    QUARANTINE_SCHEMA,
    CampaignRun,
    JobOutcome,
    classify_failure,
    run_campaign,
)
from .figures import (
    BUILTIN_CAMPAIGNS,
    adaptive_dlb_campaign,
    breathing_campaign,
    ci_smoke_campaign,
    demo_campaign,
    dlb_figure_campaign,
    get_campaign,
    hybrid_sweep_campaign,
)
from .journal import Journal, JournalState, replay
from .runner import RECORD_SCHEMA, job_record, run_job, simulated_digest
from .spec import CampaignSpec, Job
from .store import ResultStore, StoreError, cross_run_identity
from .supervisor import Supervisor, SupervisorConfig

__all__ = [
    "BUILTIN_CAMPAIGNS",
    "CampaignReport",
    "CampaignRun",
    "CampaignSpec",
    "Clock",
    "DoctorReport",
    "Job",
    "JobOutcome",
    "Journal",
    "JournalState",
    "QUARANTINE_SCHEMA",
    "RECORD_SCHEMA",
    "ResultStore",
    "StoreError",
    "Supervisor",
    "SupervisorConfig",
    "VirtualClock",
    "WallClock",
    "breathing_campaign",
    "build_report",
    "ci_smoke_campaign",
    "classify_failure",
    "cross_run_identity",
    "demo_campaign",
    "diagnose",
    "dlb_figure_campaign",
    "get_campaign",
    "hybrid_sweep_campaign",
    "job_record",
    "replay",
    "run_campaign",
    "run_job",
    "simulated_digest",
]
