"""Element types of the hybrid respiratory mesh.

The paper's 17.7M-element mesh mixes three volume element types (Sec. 2.1):

* **prisms** in the boundary layer (extruded from the wall surface, to
  resolve near-wall gradients),
* **tetrahedra** in the core flow,
* **pyramids** to transition from the prisms' quadrilateral faces to the
  tetrahedra.

This module defines the type metadata used everywhere: node counts, face
definitions (for dual-graph construction), and reference decompositions into
tetrahedra (for volume computation).
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["ElementType", "NODES_PER_TYPE", "FACES_PER_TYPE",
           "TET_DECOMPOSITION", "element_volumes"]


class ElementType(enum.IntEnum):
    """Volume element types (values used in ``Mesh.elem_types``)."""

    TET = 0
    PYRAMID = 1
    PRISM = 2


#: Number of nodes per element type.
NODES_PER_TYPE = {
    ElementType.TET: 4,
    ElementType.PYRAMID: 5,
    ElementType.PRISM: 6,
}

#: Local faces per element type (tuples of local node indices).  Triangular
#: and quadrilateral faces; used to build the face-sharing dual graph.
FACES_PER_TYPE = {
    ElementType.TET: (
        (0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3),
    ),
    # pyramid: quad base 0-1-2-3, apex 4
    ElementType.PYRAMID: (
        (0, 1, 2, 3), (0, 1, 4), (1, 2, 4), (2, 3, 4), (3, 0, 4),
    ),
    # prism: triangles 0-1-2 (bottom) and 3-4-5 (top), three quads
    ElementType.PRISM: (
        (0, 1, 2), (3, 4, 5), (0, 1, 4, 3), (1, 2, 5, 4), (2, 0, 3, 5),
    ),
}

#: Decomposition of each reference element into tetrahedra (local indices),
#: used for volume computation of arbitrary (possibly warped) elements.
TET_DECOMPOSITION = {
    ElementType.TET: ((0, 1, 2, 3),),
    ElementType.PYRAMID: ((0, 1, 2, 4), (0, 2, 3, 4)),
    ElementType.PRISM: ((0, 1, 2, 3), (1, 2, 3, 4), (2, 3, 4, 5)),
}


def _tet_volumes(coords: np.ndarray, conn: np.ndarray) -> np.ndarray:
    """Signed volumes of tetrahedra given ``conn`` (n, 4) node indices."""
    p0 = coords[conn[:, 0]]
    d1 = coords[conn[:, 1]] - p0
    d2 = coords[conn[:, 2]] - p0
    d3 = coords[conn[:, 3]] - p0
    return np.einsum("ij,ij->i", np.cross(d1, d2), d3) / 6.0


def element_volumes(coords: np.ndarray, elem_type: ElementType,
                    conn: np.ndarray) -> np.ndarray:
    """Unsigned volumes of all elements of one type.

    Parameters
    ----------
    coords:
        (nnodes, 3) node coordinates.
    elem_type:
        The element type of every row in ``conn``.
    conn:
        (nelem, nodes_per_type) connectivity.
    """
    conn = np.asarray(conn)
    if conn.ndim != 2 or conn.shape[1] != NODES_PER_TYPE[elem_type]:
        raise ValueError(
            f"connectivity shape {conn.shape} invalid for {elem_type.name}")
    total = np.zeros(conn.shape[0])
    for tet in TET_DECOMPOSITION[elem_type]:
        total += np.abs(_tet_volumes(coords, conn[:, list(tet)]))
    return total
