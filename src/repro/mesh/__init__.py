"""Hybrid unstructured mesh substrate: element types, mesh container,
synthetic airway geometry, and the tube mesher."""

from .airway import AirwayConfig, Segment, build_airway_tree
from .elements import (
    ElementType,
    FACES_PER_TYPE,
    NODES_PER_TYPE,
    TET_DECOMPOSITION,
    element_volumes,
)
from .generator import AirwayMesh, MeshResolution, build_airway_mesh, build_tube_mesh
from .io import read_vtk, write_vtk
from .quality import QualityReport, edge_aspect_ratios, quality_report, tet_regularity
from .mesh import CSRGraph, Mesh

__all__ = [
    "AirwayConfig",
    "AirwayMesh",
    "CSRGraph",
    "ElementType",
    "FACES_PER_TYPE",
    "Mesh",
    "MeshResolution",
    "NODES_PER_TYPE",
    "Segment",
    "TET_DECOMPOSITION",
    "build_airway_mesh",
    "build_airway_tree",
    "build_tube_mesh",
    "element_volumes",
    "QualityReport",
    "edge_aspect_ratios",
    "quality_report",
    "read_vtk",
    "tet_regularity",
    "write_vtk",
]
