"""The hybrid unstructured mesh container and its derived graphs.

Connectivity is stored padded: ``elem_nodes`` is ``(nelem, 6)`` int32 with
``-1`` padding (6 = prism node count).  Elements appear in *generation
order*, which is spatially coherent — the property the ATOMICS and MULTIDEP
strategies exploit for locality, and the order chunking preserves.

Two derived graphs drive the runtime layers:

* the **face-sharing dual graph** (elements sharing a whole face) — input to
  the partitioners;
* the **node-sharing conflict graph** (elements sharing at least one node) —
  the race structure of the FE assembly, input to coloring and to subdomain
  adjacency for multidependences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .elements import ElementType, NODES_PER_TYPE, element_volumes

__all__ = ["Mesh", "CSRGraph"]

_PAD = -1
_MAX_NODES = 6


@dataclass(frozen=True)
class CSRGraph:
    """A compressed-sparse-row adjacency structure over ``n`` vertices."""

    xadj: np.ndarray     # (n+1,) int64 offsets
    adjncy: np.ndarray   # (nnz,) int32 neighbour ids

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.xadj) - 1

    @property
    def nedges(self) -> int:
        """Number of (directed) adjacency entries."""
        return len(self.adjncy)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of vertex ``v``."""
        return self.adjncy[self.xadj[v]:self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self.xadj[v + 1] - self.xadj[v])

    @staticmethod
    def from_edges(n: int, edges_a: np.ndarray, edges_b: np.ndarray
                   ) -> "CSRGraph":
        """Build a symmetric CSR graph from undirected edge endpoints."""
        src = np.concatenate([edges_a, edges_b])
        dst = np.concatenate([edges_b, edges_a])
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        counts = np.bincount(src, minlength=n)
        xadj = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=xadj[1:])
        return CSRGraph(xadj=xadj, adjncy=dst.astype(np.int32))


class Mesh:
    """A hybrid (tet/pyramid/prism) unstructured mesh.

    Parameters
    ----------
    coords:
        (nnodes, 3) float node coordinates.
    elem_types:
        (nelem,) int8 of :class:`ElementType` values, in generation order.
    elem_nodes:
        (nelem, 6) int32 connectivity padded with ``-1``.
    regions:
        Optional (nelem,) int32 region/segment labels (airway generation id).
    """

    def __init__(self, coords: np.ndarray, elem_types: np.ndarray,
                 elem_nodes: np.ndarray,
                 regions: Optional[np.ndarray] = None):
        self.coords = np.asarray(coords, dtype=np.float64)
        self.elem_types = np.asarray(elem_types, dtype=np.int8)
        self.elem_nodes = np.asarray(elem_nodes, dtype=np.int32)
        if self.coords.ndim != 2 or self.coords.shape[1] != 3:
            raise ValueError(f"coords must be (n, 3), got {self.coords.shape}")
        if self.elem_nodes.shape != (len(self.elem_types), _MAX_NODES):
            raise ValueError(
                f"elem_nodes must be (nelem, {_MAX_NODES}), got "
                f"{self.elem_nodes.shape}")
        self.regions = (np.zeros(len(self.elem_types), dtype=np.int32)
                        if regions is None
                        else np.asarray(regions, dtype=np.int32))
        if len(self.regions) != self.nelem:
            raise ValueError("regions length mismatch")
        self._validate_connectivity()
        self._centroids: Optional[np.ndarray] = None

    def _validate_connectivity(self) -> None:
        for etype in ElementType:
            mask = self.elem_types == etype
            if not mask.any():
                continue
            k = NODES_PER_TYPE[etype]
            conn = self.elem_nodes[mask]
            used, padding = conn[:, :k], conn[:, k:]
            if (used < 0).any() or (used >= self.nnodes).any():
                raise ValueError(f"{etype.name}: node index out of range")
            if (padding != _PAD).any():
                raise ValueError(f"{etype.name}: padding must be -1")

    # -- basic queries ------------------------------------------------------
    @property
    def nnodes(self) -> int:
        """Number of nodes."""
        return self.coords.shape[0]

    @property
    def nelem(self) -> int:
        """Number of elements."""
        return self.elem_types.shape[0]

    def type_counts(self) -> dict:
        """Histogram of element types ({ElementType: count})."""
        return {etype: int((self.elem_types == etype).sum())
                for etype in ElementType}

    def elements_of_type(self, etype: ElementType) -> np.ndarray:
        """Element ids of one type (generation order preserved)."""
        return np.nonzero(self.elem_types == etype)[0]

    def connectivity(self, etype: ElementType) -> np.ndarray:
        """(n_type, nodes_per_type) connectivity of one element type."""
        k = NODES_PER_TYPE[etype]
        return self.elem_nodes[self.elem_types == etype][:, :k]

    def nodes_of(self, eid: int) -> np.ndarray:
        """Node ids of element ``eid`` (unpadded)."""
        etype = ElementType(self.elem_types[eid])
        return self.elem_nodes[eid, :NODES_PER_TYPE[etype]]

    def centroids(self) -> np.ndarray:
        """(nelem, 3) element centroids (cached)."""
        if self._centroids is None:
            cents = np.zeros((self.nelem, 3))
            for etype in ElementType:
                ids = self.elements_of_type(etype)
                if len(ids) == 0:
                    continue
                conn = self.connectivity(etype)
                cents[ids] = self.coords[conn].mean(axis=1)
            self._centroids = cents
        return self._centroids

    def volumes(self) -> np.ndarray:
        """(nelem,) element volumes."""
        vols = np.zeros(self.nelem)
        for etype in ElementType:
            ids = self.elements_of_type(etype)
            if len(ids) == 0:
                continue
            vols[ids] = element_volumes(self.coords, etype,
                                        self.connectivity(etype))
        return vols

    # -- derived graphs -----------------------------------------------------
    def node_to_elements(self) -> CSRGraph:
        """CSR map node -> incident element ids."""
        valid = self.elem_nodes.ravel() != _PAD
        nodes = self.elem_nodes.ravel()[valid]
        elems = np.repeat(np.arange(self.nelem, dtype=np.int32), _MAX_NODES)
        elems = elems[valid]
        order = np.argsort(nodes, kind="stable")
        nodes, elems = nodes[order], elems[order]
        counts = np.bincount(nodes, minlength=self.nnodes)
        xadj = np.zeros(self.nnodes + 1, dtype=np.int64)
        np.cumsum(counts, out=xadj[1:])
        return CSRGraph(xadj=xadj, adjncy=elems)

    def _incidence(self, element_ids: Optional[np.ndarray] = None):
        """Sparse (nelem_subset x nnodes) element-node incidence matrix."""
        from scipy import sparse

        if element_ids is None:
            conn = self.elem_nodes
            n = self.nelem
        else:
            conn = self.elem_nodes[element_ids]
            n = len(element_ids)
        valid = conn.ravel() != _PAD
        cols = conn.ravel()[valid]
        rows = np.repeat(np.arange(n, dtype=np.int64), _MAX_NODES)[valid]
        data = np.ones(len(cols), dtype=np.int8)
        return sparse.csr_matrix((data, (rows, cols)),
                                 shape=(n, self.nnodes))

    def _shared_node_adjacency(self, ncommon: int,
                               element_ids: Optional[np.ndarray] = None
                               ) -> CSRGraph:
        """Elements adjacent iff they share >= ``ncommon`` nodes.

        This is METIS's mesh-to-dual rule (``ncommon=3`` approximates
        face-sharing for tets/pyramids/prisms; ``ncommon=1`` is the
        node-sharing race/conflict graph of the assembly).
        """
        inc = self._incidence(element_ids)
        counts = (inc @ inc.T).tocoo()
        mask = (counts.data >= ncommon) & (counts.row != counts.col)
        src = counts.row[mask]
        dst = counts.col[mask]
        n = inc.shape[0]
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        xadj = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=xadj[1:])
        return CSRGraph(xadj=xadj, adjncy=dst.astype(np.int32))

    def face_adjacency(self, ncommon: int = 2) -> CSRGraph:
        """Dual graph for partitioning: elements sharing >= ``ncommon`` nodes.

        The default (2 = edge-sharing) is robust to the tube mesher's
        non-conforming quad diagonals between element-type zones while
        staying sparse (~15 neighbours/element); pass ``ncommon=3`` for
        strict face-sharing on conforming meshes.
        """
        return self._shared_node_adjacency(ncommon)

    def node_sharing_adjacency(self,
                               element_ids: Optional[np.ndarray] = None
                               ) -> CSRGraph:
        """Conflict graph: elements sharing >= 1 node.

        With ``element_ids`` the graph is restricted to that subset (vertex
        ``i`` of the result is ``element_ids[i]``) — this is what each rank
        colors locally.
        """
        if element_ids is not None:
            element_ids = np.asarray(element_ids, dtype=np.int64)
        return self._shared_node_adjacency(1, element_ids)

    def __repr__(self) -> str:
        counts = self.type_counts()
        mix = ", ".join(f"{v} {k.name.lower()}s" for k, v in counts.items()
                        if v)
        return f"Mesh({self.nnodes} nodes, {self.nelem} elements: {mix})"
