"""Hybrid tube-mesh generator for the airway tree.

Each :class:`~repro.mesh.airway.Segment` is meshed as a structured tube:

* cross-sections along the axis, each a disk lattice — a center node plus
  ``rings`` concentric rings of ``P`` points;
* between consecutive sections the lattice cells become volume elements:

  - the innermost wedges (center ↔ ring 1) are split into **tetrahedra**
    (core flow),
  - the intermediate annulus is split into **pyramids + tetrahedra**
    (the prism-to-tet transition of the paper's mesh),
  - the outermost annulus — the boundary layer at the airway wall — is kept
    as **prisms**.

Elements are emitted in generation order (axially, ring by ring), which is
spatially coherent: chunking this order preserves locality, exactly the
property the paper's ATOMICS and MULTIDEP strategies rely on.

Segments are meshed independently (junction regions of real patient meshes
are unstructured; we record explicit *junction pairs* instead, so the dual
graph used for partitioning remains connected — see
:meth:`AirwayMesh.dual_with_junctions`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .airway import AirwayConfig, Segment, build_airway_tree
from .elements import ElementType
from .mesh import CSRGraph, Mesh

__all__ = ["MeshResolution", "AirwayMesh", "build_airway_mesh",
           "build_tube_mesh"]


@dataclass(frozen=True)
class MeshResolution:
    """Discretization parameters of the tube mesher.

    ``points_per_ring`` applies at the trachea radius and scales with
    sqrt(radius) for other segments (never below ``min_points``).
    """

    points_per_ring: int = 8
    rings: int = 3
    min_points: int = 6
    section_aspect: float = 1.2     # axial spacing ~ radius * aspect
    min_sections: int = 2
    max_sections: int = 12

    def __post_init__(self):
        if self.rings < 2:
            raise ValueError("rings must be >= 2 (need a boundary layer)")
        if self.min_points < 3:
            raise ValueError("min_points must be >= 3")

    def points_for(self, radius: float, reference_radius: float) -> int:
        """Ring point count for a segment of ``radius``."""
        p = int(round(self.points_per_ring
                      * np.sqrt(radius / reference_radius)))
        return max(self.min_points, p)

    def rings_for(self, radius: float, reference_radius: float) -> int:
        """Radial ring count for a segment of ``radius``.

        Wide segments get more core rings (tet-rich interiors); narrow
        distal branches keep only the boundary layer plus one core ring
        (prism-rich) — like real airway meshes, where the near-wall prism
        layers dominate small branches.  This radius-dependent element mix
        is what makes per-rank assembly cost vary even under a
        count-balanced partition (the paper's L96 ~ 0.66).
        """
        r = int(round(self.rings * np.sqrt(radius / reference_radius)))
        return max(2, min(r, self.rings + 2))

    def sections_for(self, length: float, radius: float) -> int:
        """Number of axial intervals for a segment."""
        s = int(round(length / (radius * self.section_aspect)))
        return int(np.clip(s, self.min_sections, self.max_sections))


def _basis(direction: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Two unit vectors spanning the plane perpendicular to ``direction``."""
    helper = np.array([1.0, 0.0, 0.0])
    if abs(np.dot(helper, direction)) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    u = np.cross(direction, helper)
    u /= np.linalg.norm(u)
    v = np.cross(direction, u)
    return u, v


class _MeshBuilder:
    """Accumulates nodes/elements across segments."""

    def __init__(self) -> None:
        self.coords: list[np.ndarray] = []
        self.types: list[int] = []
        self.conn: list[list[int]] = []
        self.regions: list[int] = []
        self.n_nodes = 0

    def add_nodes(self, pts: np.ndarray) -> np.ndarray:
        ids = np.arange(self.n_nodes, self.n_nodes + len(pts))
        self.coords.append(pts)
        self.n_nodes += len(pts)
        return ids

    def add_element(self, etype: ElementType, nodes: list[int],
                    region: int) -> None:
        padded = list(nodes) + [-1] * (6 - len(nodes))
        self.types.append(int(etype))
        self.conn.append(padded)
        self.regions.append(region)

    def build(self) -> Mesh:
        return Mesh(coords=np.vstack(self.coords),
                    elem_types=np.asarray(self.types, dtype=np.int8),
                    elem_nodes=np.asarray(self.conn, dtype=np.int32),
                    regions=np.asarray(self.regions, dtype=np.int32))


def _mesh_segment(builder: _MeshBuilder, seg: Segment, P: int, R: int,
                  S: int) -> tuple[int, int]:
    """Mesh one tube segment; returns its (first, last+1) element id range."""
    u, v = _basis(seg.direction)
    nodes_per_section = 1 + R * P
    theta = 2.0 * np.pi * np.arange(P) / P
    ring_unit = np.outer(np.cos(theta), u) + np.outer(np.sin(theta), v)

    section_ids = []
    for s in range(S + 1):
        origin = seg.start + seg.direction * (seg.length * s / S)
        pts = [origin]
        for k in range(1, R + 1):
            r = seg.radius * k / R
            pts.extend(origin + r * ring_unit)
        section_ids.append(builder.add_nodes(np.asarray(pts)))

    def center(s):
        return int(section_ids[s][0])

    def ring(s, k, j):
        return int(section_ids[s][1 + (k - 1) * P + (j % P)])

    first_elem = len(builder.types)
    region = seg.sid

    def emit_prism_as_tets(a, b, c, d, e, f):
        builder.add_element(ElementType.TET, [a, b, c, d], region)
        builder.add_element(ElementType.TET, [b, c, d, e], region)
        builder.add_element(ElementType.TET, [c, d, e, f], region)

    def emit_prism_as_tet_pyramid(a, b, c, d, e, f):
        # prism (a,b,c | d,e,f) = tet(a,d,e,f) + pyramid(b,c,f,e; apex a)
        builder.add_element(ElementType.TET, [a, d, e, f], region)
        builder.add_element(ElementType.PYRAMID, [b, c, f, e, a], region)

    for s in range(S):
        sn = s + 1
        # innermost wedges: center <-> ring 1 (core tetrahedra)
        for j in range(P):
            a, b, c = center(s), ring(s, 1, j), ring(s, 1, j + 1)
            d, e, f = center(sn), ring(sn, 1, j), ring(sn, 1, j + 1)
            emit_prism_as_tets(a, b, c, d, e, f)
        # annuli between ring k and k+1
        for k in range(1, R):
            is_bl = (k == R - 1)
            is_transition = (R >= 3 and k == R - 2)
            for j in range(P):
                a, b = ring(s, k, j), ring(s, k, j + 1)
                c, d = ring(s, k + 1, j + 1), ring(s, k + 1, j)
                a2, b2 = ring(sn, k, j), ring(sn, k, j + 1)
                c2, d2 = ring(sn, k + 1, j + 1), ring(sn, k + 1, j)
                # split the hex cell into two prisms along diagonal a-c
                prisms = (((a, b, c), (a2, b2, c2)),
                          ((a, c, d), (a2, c2, d2)))
                for (p_bot, p_top) in prisms:
                    nodes = (*p_bot, *p_top)
                    if is_bl:
                        builder.add_element(ElementType.PRISM, list(nodes),
                                            region)
                    elif is_transition:
                        emit_prism_as_tet_pyramid(*nodes)
                    else:
                        emit_prism_as_tets(*nodes)
    return first_elem, len(builder.types)


@dataclass
class AirwayMesh:
    """The generated airway mesh plus the geometry it came from.

    Attributes
    ----------
    mesh:
        The hybrid volume mesh.
    segments:
        Centerline tree (see :mod:`repro.mesh.airway`).
    elem_ranges:
        Per segment sid, the (first, last+1) element-id range.
    junction_pairs:
        One (parent_element, child_element) pair per tree edge; added to the
        dual graph so partitioning sees a connected domain.
    """

    mesh: Mesh
    segments: list[Segment]
    elem_ranges: dict[int, tuple[int, int]]
    junction_pairs: list[tuple[int, int]]

    @property
    def inlet_segment(self) -> Segment:
        """The face/hemisphere segment (the outer boundary of the domain)."""
        return self.segments[0]

    @property
    def nasal_segment(self) -> Segment:
        """The nasal/pharynx segment whose entrance is the nostril."""
        for seg in self.segments:
            if seg.generation == -1:  # GEN_NASAL
                return seg
        return self.segments[0]

    def inlet_disk(self) -> tuple[np.ndarray, np.ndarray, float]:
        """(center, axis, radius) of the injection disk — the *nasal
        orifice* ("particles are always introduced in the system through
        the nasal orifice", paper Sec. 2.2)."""
        seg = self.nasal_segment
        return seg.start.copy(), seg.direction.copy(), seg.radius

    def segment_of_element(self, eid: int) -> int:
        """Segment sid owning element ``eid``."""
        return int(self.mesh.regions[eid])

    def dual_with_junctions(self) -> CSRGraph:
        """Face-sharing dual graph plus one edge per segment junction."""
        base = self.mesh.face_adjacency()
        if not self.junction_pairs:
            return base
        extra = np.asarray(self.junction_pairs, dtype=np.int32)
        # rebuild from the combined (deduplicated, one-directional) edge list
        src = np.repeat(np.arange(base.n, dtype=np.int32),
                        np.diff(base.xadj).astype(np.int64))
        dst = base.adjncy
        half = src < dst
        all_a = np.concatenate([src[half], extra[:, 0]])
        all_b = np.concatenate([dst[half], extra[:, 1]])
        return CSRGraph.from_edges(base.n, all_a, all_b)


def build_tube_mesh(segment: Segment,
                    resolution: Optional[MeshResolution] = None,
                    reference_radius: Optional[float] = None) -> Mesh:
    """Mesh a single straight tube (useful for tests and small demos)."""
    res = resolution or MeshResolution()
    ref = reference_radius if reference_radius is not None else segment.radius
    builder = _MeshBuilder()
    P = res.points_for(segment.radius, ref)
    S = res.sections_for(segment.length, segment.radius)
    _mesh_segment(builder, segment, P, res.rings_for(segment.radius, ref), S)
    return builder.build()


def build_airway_mesh(config: Optional[AirwayConfig] = None,
                      resolution: Optional[MeshResolution] = None
                      ) -> AirwayMesh:
    """Generate the full airway mesh from face to the last generation."""
    cfg = config or AirwayConfig()
    res = resolution or MeshResolution()
    segments = build_airway_tree(cfg)
    builder = _MeshBuilder()
    elem_ranges: dict[int, tuple[int, int]] = {}
    for seg in segments:
        P = res.points_for(seg.radius, cfg.trachea_radius)
        S = res.sections_for(seg.length, seg.radius)
        R = res.rings_for(seg.radius, cfg.trachea_radius)
        elem_ranges[seg.sid] = _mesh_segment(builder, seg, P, R, S)
    mesh = builder.build()
    junctions = []
    for seg in segments:
        if seg.parent < 0:
            continue
        parent_range = elem_ranges[seg.parent]
        child_range = elem_ranges[seg.sid]
        # last element of the parent tube touches its outlet; first element
        # of the child tube touches its inlet.
        junctions.append((parent_range[1] - 1, child_range[0]))
    return AirwayMesh(mesh=mesh, segments=segments, elem_ranges=elem_ranges,
                      junction_pairs=junctions)
