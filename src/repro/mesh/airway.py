"""Synthetic human-airway geometry: a branching centerline tree.

The paper's mesh is a subject-specific geometry "extended from the face to
the 7th branch generation of the bronchopulmonary tree and a hemisphere of
the subject's face exterior".  We reproduce its *structure* synthetically:

* a wide, short **face/hemisphere** inlet segment (where particles are
  injected — the nasal orifice),
* a **nasal/pharynx** segment,
* the **trachea** (generation 0),
* a recursive **bronchial tree**: each branch splits into two children with
  radius scaled by Murray's law (2^(-1/3) ~ 0.79) and length proportional
  to the radius, down to a configurable generation (paper: 7).

The tree is deterministic given the seed.  Geometric realism matters for the
*load-balance structure*: particles enter through one end (few MPI
subdomains), boundary-layer prisms concentrate near walls, and small distal
branches carry little volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["Segment", "AirwayConfig", "build_airway_tree"]

#: Murray's law radius ratio for a symmetric bifurcation.
MURRAY_RATIO = 2.0 ** (-1.0 / 3.0)

#: Generation labels of the extra-thoracic segments.
GEN_FACE = -2
GEN_NASAL = -1


@dataclass(frozen=True)
class Segment:
    """One tube of the airway tree."""

    sid: int
    parent: int              # sid of parent segment, -1 for the root
    generation: int          # GEN_FACE, GEN_NASAL, 0 (trachea), 1..G
    start: np.ndarray        # (3,) start point of the centerline
    direction: np.ndarray    # (3,) unit vector along the centerline
    length: float
    radius: float

    @property
    def end(self) -> np.ndarray:
        """End point of the centerline."""
        return self.start + self.direction * self.length


@dataclass(frozen=True)
class AirwayConfig:
    """Geometry parameters of the synthetic airway.

    Defaults give adult-scale dimensions in metres (trachea radius ~9 mm).
    """

    generations: int = 5
    trachea_radius: float = 0.009
    trachea_length_factor: float = 7.0   # length = factor * radius
    branch_length_factor: float = 3.5
    branch_angle_deg: float = 35.0
    radius_ratio: float = MURRAY_RATIO
    face_radius_factor: float = 2.5      # face hemisphere vs trachea radius
    nasal_radius_factor: float = 0.8
    seed: int = 2018                     # ICPP year; deterministic jitter

    def __post_init__(self):
        if self.generations < 0:
            raise ValueError("generations must be >= 0")
        if not 0 < self.radius_ratio < 1:
            raise ValueError("radius_ratio must be in (0, 1)")


def _rotate(v: np.ndarray, axis: np.ndarray, angle: float) -> np.ndarray:
    """Rodrigues rotation of ``v`` around unit ``axis`` by ``angle`` rad."""
    c, s = np.cos(angle), np.sin(angle)
    return (v * c + np.cross(axis, v) * s + axis * np.dot(axis, v) * (1 - c))


def _perpendicular(v: np.ndarray) -> np.ndarray:
    """Any unit vector perpendicular to ``v``."""
    helper = np.array([1.0, 0.0, 0.0])
    if abs(np.dot(helper, v)) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    p = np.cross(v, helper)
    return p / np.linalg.norm(p)


def build_airway_tree(config: Optional[AirwayConfig] = None) -> list[Segment]:
    """Build the centerline tree: face -> nasal -> trachea -> generations.

    Returns segments ordered root-first (parents before children).
    """
    cfg = config or AirwayConfig()
    rng = np.random.default_rng(cfg.seed)
    segments: list[Segment] = []
    down = np.array([0.0, 0.0, -1.0])

    # Face/hemisphere inlet: flow (and the aerosol) enters here.
    face_radius = cfg.trachea_radius * cfg.face_radius_factor
    face = Segment(sid=0, parent=-1, generation=GEN_FACE,
                   start=np.array([0.0, 0.0, 0.0]), direction=down,
                   length=face_radius * 1.2, radius=face_radius)
    segments.append(face)

    # Nasal cavity / pharynx.
    nasal_radius = cfg.trachea_radius * cfg.nasal_radius_factor
    nasal = Segment(sid=1, parent=0, generation=GEN_NASAL,
                    start=face.end, direction=down,
                    length=cfg.trachea_radius * 6.0, radius=nasal_radius)
    segments.append(nasal)

    # Trachea (generation 0).
    trachea = Segment(sid=2, parent=1, generation=0,
                      start=nasal.end, direction=down,
                      length=cfg.trachea_radius * cfg.trachea_length_factor,
                      radius=cfg.trachea_radius)
    segments.append(trachea)

    # Recursive symmetric bifurcation to generation G.
    frontier = [trachea]
    for gen in range(1, cfg.generations + 1):
        next_frontier = []
        radius = cfg.trachea_radius * cfg.radius_ratio ** gen
        length = radius * cfg.branch_length_factor
        for parent in frontier:
            # Branching plane alternates per generation, with jitter so
            # the tree fills space like a real bronchial tree.
            base_perp = _perpendicular(parent.direction)
            plane = _rotate(base_perp, parent.direction,
                            gen * (np.pi / 2.0) + rng.uniform(-0.3, 0.3))
            for sign in (+1.0, -1.0):
                angle = np.deg2rad(cfg.branch_angle_deg
                                   + rng.uniform(-5.0, 5.0))
                direction = _rotate(parent.direction, plane, sign * angle)
                direction = direction / np.linalg.norm(direction)
                seg = Segment(sid=len(segments), parent=parent.sid,
                              generation=gen, start=parent.end,
                              direction=direction, length=length,
                              radius=radius)
                segments.append(seg)
                next_frontier.append(seg)
        frontier = next_frontier
    return segments
