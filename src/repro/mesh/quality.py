"""Mesh quality metrics.

Production CFD meshes live or die by element quality (the paper's mesh is
carefully graded: boundary-layer prisms, core tets, transition pyramids).
This module computes the standard per-element metrics used to vet a mesh
before running on it:

* **volume** (must be positive — no inverted elements),
* **edge aspect ratio** (longest/shortest edge),
* **shape regularity** for tets (normalized volume / rms-edge^3 — 1 for the
  regular tetrahedron, -> 0 for slivers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .elements import ElementType, NODES_PER_TYPE
from .mesh import Mesh

__all__ = ["QualityReport", "edge_aspect_ratios", "tet_regularity",
           "quality_report"]

#: Edges (local node pairs) per element type.
_EDGES = {
    ElementType.TET: ((0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)),
    ElementType.PYRAMID: ((0, 1), (1, 2), (2, 3), (3, 0),
                          (0, 4), (1, 4), (2, 4), (3, 4)),
    ElementType.PRISM: ((0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3),
                        (0, 3), (1, 4), (2, 5)),
}

#: Regular-tetrahedron constant: V = edge^3 / (6 sqrt 2), so
#: V / rms_edge^3 = 1/(6 sqrt 2) for the perfect element.
_REG_TET = 1.0 / (6.0 * np.sqrt(2.0))


@dataclass(frozen=True)
class QualityReport:
    """Aggregate quality statistics of a mesh."""

    n_elements: int
    min_volume: float
    total_volume: float
    max_aspect: float
    mean_aspect: float
    min_tet_regularity: float
    inverted: int

    @property
    def ok(self) -> bool:
        """A usable mesh: no inverted elements, bounded aspect ratios."""
        return self.inverted == 0 and self.max_aspect < 100.0

    def format(self) -> str:
        """One-paragraph human-readable summary."""
        return (f"{self.n_elements} elements, volume "
                f"{self.total_volume:.3e} (min {self.min_volume:.3e}, "
                f"{self.inverted} inverted), aspect max/mean "
                f"{self.max_aspect:.1f}/{self.mean_aspect:.1f}, "
                f"worst tet regularity {self.min_tet_regularity:.3f}")


def edge_aspect_ratios(mesh: Mesh) -> np.ndarray:
    """(nelem,) longest/shortest edge ratio per element."""
    out = np.ones(mesh.nelem)
    for etype in ElementType:
        ids = mesh.elements_of_type(etype)
        if len(ids) == 0:
            continue
        nn = NODES_PER_TYPE[etype]
        conn = mesh.elem_nodes[ids][:, :nn]
        lengths = []
        for a, b in _EDGES[etype]:
            d = mesh.coords[conn[:, a]] - mesh.coords[conn[:, b]]
            lengths.append(np.linalg.norm(d, axis=1))
        lengths = np.stack(lengths, axis=1)
        shortest = np.maximum(lengths.min(axis=1), 1e-300)
        out[ids] = lengths.max(axis=1) / shortest
    return out


def tet_regularity(mesh: Mesh) -> np.ndarray:
    """Shape regularity of the tetrahedra (1 = regular, 0 = degenerate);
    non-tet elements get NaN."""
    out = np.full(mesh.nelem, np.nan)
    ids = mesh.elements_of_type(ElementType.TET)
    if len(ids) == 0:
        return out
    conn = mesh.elem_nodes[ids][:, :4]
    p = mesh.coords[conn]
    d1, d2, d3 = (p[:, 1] - p[:, 0], p[:, 2] - p[:, 0], p[:, 3] - p[:, 0])
    vol = np.abs(np.einsum("ij,ij->i", np.cross(d1, d2), d3)) / 6.0
    rms = np.zeros(len(ids))
    for a, b in _EDGES[ElementType.TET]:
        d = p[:, a] - p[:, b]
        rms += np.einsum("ij,ij->i", d, d)
    rms = np.sqrt(rms / 6.0)
    out[ids] = vol / np.maximum(rms, 1e-300) ** 3 / _REG_TET
    return out


def quality_report(mesh: Mesh) -> QualityReport:
    """Compute the aggregate :class:`QualityReport` of ``mesh``."""
    volumes = mesh.volumes()
    aspects = edge_aspect_ratios(mesh)
    reg = tet_regularity(mesh)
    reg_vals = reg[~np.isnan(reg)]
    return QualityReport(
        n_elements=mesh.nelem,
        min_volume=float(volumes.min()) if mesh.nelem else 0.0,
        total_volume=float(volumes.sum()),
        max_aspect=float(aspects.max()) if mesh.nelem else 1.0,
        mean_aspect=float(aspects.mean()) if mesh.nelem else 1.0,
        min_tet_regularity=(float(reg_vals.min()) if len(reg_vals)
                            else float("nan")),
        inverted=int((volumes <= 0).sum()))
