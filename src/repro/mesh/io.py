"""Mesh I/O: legacy-VTK text export (and a reader for round trips).

Writes the hybrid airway mesh as a legacy VTK *unstructured grid* — the
format every visualization tool (ParaView, VisIt, PyVista) opens — with the
segment/region id attached as cell data, so deposition maps and partitions
can be inspected visually.

VTK cell-type ids: tetra = 10, pyramid = 14, wedge (triangular prism) = 13.
"""

from __future__ import annotations

from typing import Optional, TextIO, Union

import numpy as np

from .elements import ElementType, NODES_PER_TYPE
from .mesh import Mesh

__all__ = ["write_vtk", "read_vtk", "VTK_CELL_TYPES"]

VTK_CELL_TYPES = {
    ElementType.TET: 10,
    ElementType.PYRAMID: 14,
    ElementType.PRISM: 13,
}
_TYPE_OF_VTK = {v: k for k, v in VTK_CELL_TYPES.items()}

# lookup arrays indexed by ElementType value, for vectorized writing
_NN_OF_TYPE = np.zeros(max(ElementType) + 1, dtype=np.int64)
_VTK_ID_OF_TYPE = np.zeros(max(ElementType) + 1, dtype=np.int64)
for _t in ElementType:
    _NN_OF_TYPE[_t] = NODES_PER_TYPE[_t]
    _VTK_ID_OF_TYPE[_t] = VTK_CELL_TYPES[_t]


def _open(dest: Union[str, TextIO], mode: str):
    if isinstance(dest, str):
        return open(dest, mode), True
    return dest, False


def _write_block(fh: TextIO, lines) -> None:
    """Write an iterable of lines as one joined string (single syscall)."""
    block = "\n".join(lines)
    if block:
        fh.write(block + "\n")


def write_vtk(mesh: Mesh, dest: Union[str, TextIO],
              cell_data: Optional[dict] = None,
              title: str = "repro airway mesh") -> None:
    """Write ``mesh`` as a legacy-VTK unstructured grid.

    ``cell_data`` maps names to per-element scalar arrays; the mesh's
    region labels are always included as ``region``.
    """
    data = {"region": mesh.regions}
    if cell_data:
        for name, values in cell_data.items():
            values = np.asarray(values)
            if values.shape != (mesh.nelem,):
                raise ValueError(
                    f"cell data {name!r} must be ({mesh.nelem},), got "
                    f"{values.shape}")
            data[name] = values
    fh, owned = _open(dest, "w")
    try:
        fh.write("# vtk DataFile Version 3.0\n")
        fh.write(title.replace("\n", " ") + "\n")
        fh.write("ASCII\nDATASET UNSTRUCTURED_GRID\n")
        # each block is built as one "\n".join and written in one call;
        # tolist() hands python scalars to repr/str, so the bytes match the
        # old per-row f-string loops exactly
        fh.write(f"POINTS {mesh.nnodes} double\n")
        _write_block(fh, (" ".join(map(repr, row))
                          for row in mesh.coords.tolist()))
        sizes = _NN_OF_TYPE[mesh.elem_types]
        total = int(sizes.sum()) + mesh.nelem
        fh.write(f"CELLS {mesh.nelem} {total}\n")
        _write_block(fh, (f"{s} " + " ".join(map(str, row[:s]))
                          for s, row in zip(sizes.tolist(),
                                            mesh.elem_nodes.tolist())))
        fh.write(f"CELL_TYPES {mesh.nelem}\n")
        _write_block(fh, map(str, _VTK_ID_OF_TYPE[mesh.elem_types].tolist()))
        fh.write(f"CELL_DATA {mesh.nelem}\n")
        for name, values in data.items():
            kind = ("int" if np.issubdtype(values.dtype, np.integer)
                    else "double")
            fh.write(f"SCALARS {name} {kind} 1\nLOOKUP_TABLE default\n")
            _write_block(fh, map(str, values.tolist()))
    finally:
        if owned:
            fh.close()


def read_vtk(src: Union[str, TextIO]) -> tuple[Mesh, dict]:
    """Read a legacy-VTK unstructured grid written by :func:`write_vtk`.

    Returns (mesh, cell_data); the ``region`` array is restored into the
    mesh and also kept in ``cell_data``.
    """
    fh, owned = _open(src, "r")
    try:
        tokens = fh.read().split("\n")
    finally:
        if owned:
            fh.close()
    idx = 0

    def next_line():
        nonlocal idx
        while idx < len(tokens):
            line = tokens[idx].strip()
            idx += 1
            if line:
                return line
        raise ValueError("unexpected end of VTK file")

    if not next_line().startswith("# vtk"):
        raise ValueError("not a legacy VTK file")
    next_line()  # title
    if next_line() != "ASCII":
        raise ValueError("only ASCII VTK supported")
    if next_line() != "DATASET UNSTRUCTURED_GRID":
        raise ValueError("only UNSTRUCTURED_GRID supported")
    head = next_line().split()
    npoints = int(head[1])
    coords = np.array([[float(v) for v in next_line().split()]
                       for _ in range(npoints)])
    head = next_line().split()
    ncells = int(head[1])
    conn = np.full((ncells, 6), -1, dtype=np.int32)
    for e in range(ncells):
        parts = [int(v) for v in next_line().split()]
        conn[e, :parts[0]] = parts[1:1 + parts[0]]
    head = next_line().split()
    assert head[0] == "CELL_TYPES"
    types = np.array([_TYPE_OF_VTK[int(next_line())] for _ in range(ncells)],
                     dtype=np.int8)
    cell_data: dict = {}
    regions = None
    line = next_line()
    assert line.startswith("CELL_DATA")
    while True:
        try:
            line = next_line()
        except ValueError:
            break
        if not line.startswith("SCALARS"):
            break
        _, name, kind, _ = line.split()
        next_line()  # LOOKUP_TABLE
        cast = int if kind == "int" else float
        values = np.array([cast(next_line()) for _ in range(ncells)])
        cell_data[name] = values
        if name == "region":
            regions = values.astype(np.int32)
    mesh = Mesh(coords, types, conn, regions=regions)
    return mesh, cell_data
