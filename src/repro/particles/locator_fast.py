"""Warm-start exact element location.

A particle moves a fraction of an element size per step, so its host
element from the previous step is an excellent guess for the current one.
This module turns that guess into an *exact* answer: the cached host (or
one of its adjacency-ring neighbours) is accepted only when the
precomputed per-element safety radii of
:class:`repro.fem.geometry.ElementAdjacency` prove it is still the global
nearest centroid; everything else falls back to one batched KD-tree query.
The result is bit-identical to querying the tree for every point — the
wall-clock-only contract of :mod:`repro.perf.toggles` (toggle
``particle_warm_start``).

Acceptance tiers, for a point ``x`` with cached host ``h``:

1. **self ball** — ``d(x, c_h) < r_self(h)``: ``h`` is strictly closer
   than any other centroid; accept without scanning anything.
2. **ring ball** — ``d(x, c_h) < r_safe(h)``: the global nearest centroid
   is provably within ``candidates[h]``; an argmin over the padded
   candidate row gives the exact answer.
3. **lost** — neither ball holds (or an exact floating-point tie between
   two distinct candidates, which the KD-tree must break): batched
   ``tree.query``.

Both radius tests use strict inequality against a radius shrunk by
``1 - 1e-9``, so floating-point rounding in the distance computation can
never flip a real-arithmetic rejection into an acceptance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["warm_locate", "squared_radii", "WarmStats"]

#: relative margin protecting the strict-inequality acceptance tests
_SHRINK = 1.0 - 1e-9


class WarmStats:
    """Acceptance tallies of one :func:`warm_locate` call."""

    __slots__ = ("n", "self_ball", "ring_ball", "fallback")

    def __init__(self, n: int, self_ball: int, ring_ball: int,
                 fallback: int):
        self.n = n
        self.self_ball = self_ball
        self.ring_ball = ring_ball
        self.fallback = fallback

    def __repr__(self) -> str:
        return (f"WarmStats(n={self.n}, self_ball={self.self_ball}, "
                f"ring_ball={self.ring_ball}, fallback={self.fallback})")


def squared_radii(adj) -> tuple:
    """Precomputed shrunk-squared acceptance radii for :func:`warm_locate`.

    Callers that locate repeatedly should compute these once and pass them
    in — the per-call saving is a handful of vector ops.
    """
    r2_self = (adj.r_self * _SHRINK) ** 2
    r2_safe = (adj.r_safe * _SHRINK) ** 2
    return r2_self, r2_safe


def warm_locate(tree, centroids: np.ndarray, adj, points: np.ndarray,
                hosts: np.ndarray, r2: Optional[tuple] = None) -> tuple:
    """Exact nearest-centroid element ids for ``points``.

    Parameters
    ----------
    tree:
        The global centroid ``cKDTree`` (the fallback and tie-breaker).
    centroids:
        (nelem, 3) element centroids the tree was built from.
    adj:
        :class:`repro.fem.geometry.ElementAdjacency` for the same mesh.
    points:
        (n, 3) query positions.
    hosts:
        (n,) cached host element per point — any previous location result;
        staleness only reduces the acceptance rate, never correctness.

    Returns
    -------
    (eids, stats):
        ``eids`` is an (n,) ``np.intp`` array bit-identical to
        ``tree.query(points)[1]``; ``stats`` a :class:`WarmStats`.
    """
    n = len(points)
    eids = np.empty(n, dtype=np.intp)
    if n == 0:
        return eids, WarmStats(0, 0, 0, 0)
    hosts = np.asarray(hosts)
    if r2 is None:
        r2 = squared_radii(adj)
    r2_self, r2_safe = r2
    diff = points - centroids[hosts]
    d2 = np.einsum("ij,ij->i", diff, diff)
    in_ring = d2 < r2_safe[hosts]       # nearest provably a candidate
    in_self = d2 < r2_self[hosts]       # host provably still nearest
    lost_mask = ~in_ring
    eids[in_self] = hosts[in_self]      # (r_self <= r_safe: self ball is
    n_self = int(in_self.sum())         # a subset of the ring ball)
    np.logical_and(in_ring, ~in_self, out=in_ring)
    t2 = np.nonzero(in_ring)[0]
    n_ring = 0
    if len(t2):
        cand = adj.candidates[hosts[t2]]          # (m, width)
        cc = centroids[cand]                      # (m, width, 3)
        dd = cc - points[t2][:, None, :]
        cd2 = np.einsum("mwj,mwj->mw", dd, dd)
        best = np.argmin(cd2, axis=1)
        rowm = np.arange(len(t2))
        best_ids = cand[rowm, best]
        # exact-tie guard: two *distinct* candidates at exactly the same
        # squared distance — the KD-tree's tie-break is its own, so defer
        # to it (rounding-induced near-ties cannot differ: the scan
        # computes the same subtract/square/sum sequence the tree does)
        tie = ((cd2 == cd2[rowm, best][:, None])
               & (cand != best_ids[:, None])).any(axis=1)
        eids[t2] = best_ids
        n_ring = int(len(t2) - tie.sum())
        if tie.any():
            lost_mask[t2[tie]] = True
    lost = np.nonzero(lost_mask)[0]
    if len(lost):
        _, found = tree.query(points[lost])
        eids[lost] = found
    return eids, WarmStats(n, n_self, n_ring, len(lost))
