"""Particle forces: Ganser drag, gravity, buoyancy (paper Eqs. 3-8).

The transported aerosol particles obey Newton's second law with three
forces:

* gravity             F_g = m_p g                                  (Eq. 4)
* buoyancy            F_b = -m_p g rho_f / rho_p                   (Eq. 5)
* drag                F_D = (pi/8) mu_f d_p C_D Re_p (u_f - u_p)   (Eq. 6)

with the particle Reynolds number Re_p = rho_f d_p |u_f - u_p| / mu_f
(Eq. 7) and Ganser's drag correlation (Eq. 8, spherical limit):

    C_D = 24/Re_p [1 + 0.1118 Re_p^0.6567] + 0.4305 / (1 + 3305/Re_p)

In the Stokes limit (Re -> 0) the drag reduces to 3 pi mu d (u_f - u_p).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FluidProperties", "ParticleProperties", "ganser_cd",
           "reynolds", "drag_coefficient_times_re", "drag_force",
           "drag_linear_coefficient_d", "gravity_buoyancy_acceleration",
           "lognormal_diameters", "particle_mass", "GRAVITY"]

#: Standard gravity vector (z-up convention; airway axis points down -z).
GRAVITY = np.array([0.0, 0.0, -9.81])


@dataclass(frozen=True)
class FluidProperties:
    """Carrier fluid (air at body temperature by default)."""

    density: float = 1.15          # kg/m^3
    viscosity: float = 1.9e-5      # Pa s

    def __post_init__(self):
        if self.density <= 0 or self.viscosity <= 0:
            raise ValueError("fluid properties must be positive")


@dataclass(frozen=True)
class ParticleProperties:
    """Monodisperse spherical aerosol particles."""

    diameter: float = 4e-6         # m (typical inhaled aerosol)
    density: float = 1000.0        # kg/m^3 (aqueous droplet)

    def __post_init__(self):
        if self.diameter <= 0 or self.density <= 0:
            raise ValueError("particle properties must be positive")

    @property
    def mass(self) -> float:
        """Mass of one particle."""
        return self.density * np.pi * self.diameter ** 3 / 6.0

    def relaxation_time(self, fluid: FluidProperties) -> float:
        """Stokes relaxation time rho_p d^2 / (18 mu)."""
        return self.density * self.diameter ** 2 / (18.0 * fluid.viscosity)


def reynolds(rel_speed: np.ndarray, particles: ParticleProperties,
             fluid: FluidProperties) -> np.ndarray:
    """Particle Reynolds number for relative speed |u_f - u_p| (Eq. 7)."""
    return fluid.density * particles.diameter * rel_speed / fluid.viscosity


def ganser_cd(re: np.ndarray) -> np.ndarray:
    """Ganser drag coefficient, spherical-particle limit (Eq. 8).

    Vectorized and safe at Re = 0 (where C_D diverges but C_D * Re is
    finite; use :func:`drag_coefficient_times_re` in force computations).
    """
    re = np.asarray(re, dtype=np.float64)
    re_safe = np.maximum(re, 1e-30)
    return (24.0 / re_safe * (1.0 + 0.1118 * re_safe ** 0.6567)
            + 0.4305 / (1.0 + 3305.0 / re_safe))


def drag_coefficient_times_re(re: np.ndarray) -> np.ndarray:
    """C_D * Re, finite at Re = 0 (limit 24)."""
    re = np.asarray(re, dtype=np.float64)
    re_safe = np.maximum(re, 1e-30)
    return (24.0 * (1.0 + 0.1118 * re_safe ** 0.6567)
            + 0.4305 * re_safe / (1.0 + 3305.0 / re_safe))


def drag_force(u_fluid: np.ndarray, u_particle: np.ndarray,
               particles: ParticleProperties,
               fluid: FluidProperties) -> np.ndarray:
    """Ganser drag force (n, 3) on each particle (Eq. 6)."""
    rel = u_fluid - u_particle
    speed = np.linalg.norm(rel, axis=-1)
    re = reynolds(speed, particles, fluid)
    cdre = drag_coefficient_times_re(re)
    coeff = (np.pi / 8.0) * fluid.viscosity * particles.diameter * cdre
    return coeff[..., None] * rel


def drag_linear_coefficient(u_fluid: np.ndarray, u_particle: np.ndarray,
                            particles: ParticleProperties,
                            fluid: FluidProperties) -> np.ndarray:
    """Coefficient ``k`` (n,) such that F_D = k (u_f - u_p), evaluated at the
    current relative velocity — the semi-implicit linearization used by the
    Newmark integrator."""
    rel = u_fluid - u_particle
    speed = np.linalg.norm(rel, axis=-1)
    re = reynolds(speed, particles, fluid)
    cdre = drag_coefficient_times_re(re)
    return (np.pi / 8.0) * fluid.viscosity * particles.diameter * cdre


def gravity_buoyancy_acceleration(particles: ParticleProperties,
                                  fluid: FluidProperties) -> np.ndarray:
    """Combined gravity + buoyancy acceleration (Eqs. 4-5): g (1 - rho_f/rho_p)."""
    return GRAVITY * (1.0 - fluid.density / particles.density)


# ---------------------------------------------------------------------------
# array-capable (polydisperse) variants: diameters vary per particle
# ---------------------------------------------------------------------------

def particle_mass(diameter: np.ndarray, density: float) -> np.ndarray:
    """Mass of spherical particles with per-particle ``diameter``."""
    return density * np.pi * np.asarray(diameter) ** 3 / 6.0


def drag_linear_coefficient_d(u_fluid: np.ndarray, u_particle: np.ndarray,
                              diameter: np.ndarray,
                              fluid: FluidProperties) -> np.ndarray:
    """Per-particle drag coefficient ``k`` with per-particle diameters
    (polydisperse aerosols): F_D = k (u_f - u_p)."""
    diameter = np.asarray(diameter, dtype=np.float64)
    rel = u_fluid - u_particle
    speed = np.linalg.norm(rel, axis=-1)
    re = fluid.density * diameter * speed / fluid.viscosity
    cdre = drag_coefficient_times_re(re)
    return (np.pi / 8.0) * fluid.viscosity * diameter * cdre


def lognormal_diameters(n: int, median: float = 4e-6, gsd: float = 1.8,
                        seed: int = 0) -> np.ndarray:
    """Lognormal aerosol size distribution (median diameter, geometric
    standard deviation) — how real inhaled aerosols are specified."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if median <= 0 or gsd < 1.0:
        raise ValueError("median must be > 0 and gsd >= 1")
    rng = np.random.default_rng(seed)
    return median * np.exp(np.log(gsd) * rng.standard_normal(n))
