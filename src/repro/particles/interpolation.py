"""Mesh-based velocity interpolation for particle transport.

Alya evaluates the carrier velocity at each particle from the finite-
element field of its host element.  This module provides that code path on
our meshes: locate the host element (KD-tree, as in
:class:`~repro.particles.tracker.ElementLocator`) and interpolate the
nodal velocity with inverse-distance weights over the element's nodes —
the robust fallback interpolation particle codes use on hybrid elements
(exact inverse isoparametric maps are only cheap for tets).

The default experiments use the analytic
:class:`~repro.particles.flowfield.AirwayFlow` (documented substitution);
``MeshVelocityField`` lets users transport particles in *any* nodal field,
e.g. one produced by :class:`repro.fem.FractionalStepSolver`.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..fem import geometry as _geom
from ..mesh.mesh import Mesh
from ..perf import toggles as _perf_toggles

__all__ = ["MeshVelocityField"]


def _shared_centroid_tree(mesh: Mesh) -> cKDTree:
    """One centroid KD-tree per mesh, under geometry-cache invalidation."""
    def build():
        centroids = mesh.centroids()
        return cKDTree(centroids), centroids.nbytes
    return _geom.cached_extra(mesh, "centroid_tree", build)


class MeshVelocityField:
    """Interpolates a nodal velocity field at arbitrary points.

    Parameters
    ----------
    mesh:
        The mesh carrying the field.
    nodal_velocity:
        (nnodes, 3) velocity at the mesh nodes.
    """

    def __init__(self, mesh: Mesh, nodal_velocity: np.ndarray):
        nodal_velocity = np.asarray(nodal_velocity, dtype=np.float64)
        if nodal_velocity.shape != (mesh.nnodes, 3):
            raise ValueError(
                f"nodal_velocity must be ({mesh.nnodes}, 3), got "
                f"{nodal_velocity.shape}")
        self.mesh = mesh
        self.nodal_velocity = nodal_velocity
        # toggles captured at construction (see repro.perf.toggles); the
        # shared tree is identical to a private one — centroids are static
        if _perf_toggles.TOGGLES.geometry_cache:
            self._tree = _shared_centroid_tree(mesh)
        else:
            self._tree = cKDTree(mesh.centroids())
        self._fused = _perf_toggles.TOGGLES.particle_fused_step
        # padded connectivity and a validity mask for vectorized gathers
        self._conn = mesh.elem_nodes
        self._valid = mesh.elem_nodes >= 0
        self._ws: dict = {}

    def _buffers(self, n: int) -> dict:
        """Reusable (capacity, 6[, 3]) buffers for the fused gather path."""
        ws = self._ws
        if not ws or ws["capacity"] < n:
            cap = max(n, 2 * ws.get("capacity", 0))
            nn = self._conn.shape[1]
            ws = self._ws = {
                "capacity": cap,
                "xyz": np.empty((cap, nn, 3)),
                "d": np.empty((cap, nn)),
                "w": np.empty((cap, nn)),
                "wsum": np.empty((cap, 1)),
                "vel": np.empty((cap, nn, 3)),
                "out": np.empty((cap, 3)),
            }
        return ws

    def velocity(self, points: np.ndarray) -> np.ndarray:
        """(n, 3) interpolated velocity at ``points``.

        Host element = nearest centroid; within the element the nodal
        values are combined with inverse-distance weights (exact at the
        nodes, smooth inside).
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(points) == 0:
            return np.zeros((0, 3))
        _, eids = self._tree.query(points)
        conn = self._conn[eids]                      # (n, 6)
        valid = self._valid[eids]                    # (n, 6)
        safe_conn = np.where(valid, conn, 0)
        if self._fused:
            return self._interpolate_fused(points, valid, safe_conn)
        node_xyz = self.mesh.coords[safe_conn]       # (n, 6, 3)
        d = np.linalg.norm(node_xyz - points[:, None, :], axis=2)
        w = np.where(valid, 1.0 / np.maximum(d, 1e-15), 0.0)
        w /= w.sum(axis=1, keepdims=True)
        vel = self.nodal_velocity[safe_conn]         # (n, 6, 3)
        return np.einsum("nk,nkj->nj", w, vel)

    def _interpolate_fused(self, points: np.ndarray, valid: np.ndarray,
                           safe_conn: np.ndarray) -> np.ndarray:
        """The inverse-distance combine through preallocated buffers —
        identical op sequence to the allocating path, bit-identical
        output (toggle ``particle_fused_step``)."""
        n = len(points)
        ws = self._buffers(n)
        xyz = ws["xyz"][:n]
        d, w, wsum = ws["d"][:n], ws["w"][:n], ws["wsum"][:n]
        vel = ws["vel"][:n]
        self.mesh.coords.take(safe_conn, axis=0, out=xyz)
        np.subtract(xyz, points[:, None, :], out=xyz)
        # np.linalg.norm(..., axis=2): x*x, add.reduce, sqrt
        np.multiply(xyz, xyz, out=xyz)
        np.add.reduce(xyz, axis=2, out=d)
        np.sqrt(d, out=d)
        np.maximum(d, 1e-15, out=d)
        np.divide(1.0, d, out=d)
        np.multiply(d, valid, out=w)     # where(valid, 1/max(d,eps), 0)
        np.add.reduce(w, axis=1, out=wsum[:, 0])
        np.divide(w, wsum, out=w)
        self.nodal_velocity.take(safe_conn, axis=0, out=vel)
        return np.einsum("nk,nkj->nj", w, vel, out=ws["out"][:n]).copy()

    def host_elements(self, points: np.ndarray) -> np.ndarray:
        """Host element id per point (nearest centroid)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(points) == 0:
            return np.zeros(0, dtype=np.intp)
        _, eids = self._tree.query(points)
        return eids.astype(np.intp, copy=False)
