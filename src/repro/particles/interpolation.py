"""Mesh-based velocity interpolation for particle transport.

Alya evaluates the carrier velocity at each particle from the finite-
element field of its host element.  This module provides that code path on
our meshes: locate the host element (KD-tree, as in
:class:`~repro.particles.tracker.ElementLocator`) and interpolate the
nodal velocity with inverse-distance weights over the element's nodes —
the robust fallback interpolation particle codes use on hybrid elements
(exact inverse isoparametric maps are only cheap for tets).

The default experiments use the analytic
:class:`~repro.particles.flowfield.AirwayFlow` (documented substitution);
``MeshVelocityField`` lets users transport particles in *any* nodal field,
e.g. one produced by :class:`repro.fem.FractionalStepSolver`.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ..fem import geometry as _geom
from ..mesh.mesh import Mesh
from ..perf import toggles as _perf_toggles

__all__ = ["MeshVelocityField"]


def _shared_centroid_tree(mesh: Mesh) -> cKDTree:
    """One centroid KD-tree per mesh, under geometry-cache invalidation."""
    def build():
        centroids = mesh.centroids()
        return cKDTree(centroids), centroids.nbytes
    return _geom.cached_extra(mesh, "centroid_tree", build)


class MeshVelocityField:
    """Interpolates a nodal velocity field at arbitrary points.

    Parameters
    ----------
    mesh:
        The mesh carrying the field.
    nodal_velocity:
        (nnodes, 3) velocity at the mesh nodes.
    """

    def __init__(self, mesh: Mesh, nodal_velocity: np.ndarray):
        nodal_velocity = np.asarray(nodal_velocity, dtype=np.float64)
        if nodal_velocity.shape != (mesh.nnodes, 3):
            raise ValueError(
                f"nodal_velocity must be ({mesh.nnodes}, 3), got "
                f"{nodal_velocity.shape}")
        self.mesh = mesh
        self.nodal_velocity = nodal_velocity
        # toggle captured at construction (see repro.perf.toggles); the
        # shared tree is identical to a private one — centroids are static
        if _perf_toggles.TOGGLES.geometry_cache:
            self._tree = _shared_centroid_tree(mesh)
        else:
            self._tree = cKDTree(mesh.centroids())
        # padded connectivity and a validity mask for vectorized gathers
        self._conn = mesh.elem_nodes
        self._valid = mesh.elem_nodes >= 0

    def velocity(self, points: np.ndarray) -> np.ndarray:
        """(n, 3) interpolated velocity at ``points``.

        Host element = nearest centroid; within the element the nodal
        values are combined with inverse-distance weights (exact at the
        nodes, smooth inside).
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(points) == 0:
            return np.zeros((0, 3))
        _, eids = self._tree.query(points)
        conn = self._conn[eids]                      # (n, 6)
        valid = self._valid[eids]                    # (n, 6)
        safe_conn = np.where(valid, conn, 0)
        node_xyz = self.mesh.coords[safe_conn]       # (n, 6, 3)
        d = np.linalg.norm(node_xyz - points[:, None, :], axis=2)
        w = np.where(valid, 1.0 / np.maximum(d, 1e-15), 0.0)
        w /= w.sum(axis=1, keepdims=True)
        vel = self.nodal_velocity[safe_conn]         # (n, 6, 3)
        return np.einsum("nk,nkj->nj", w, vel)

    def host_elements(self, points: np.ndarray) -> np.ndarray:
        """Host element id per point (nearest centroid)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(points) == 0:
            return np.zeros(0, dtype=np.int64)
        _, eids = self._tree.query(points)
        return eids
