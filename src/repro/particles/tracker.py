"""Lagrangian particle tracking: Newmark integration, injection, deposition,
and rank ownership for migration.

Matches the paper's setup (Sec. 2.1): particles are injected through the
nasal orifice during the first time step, transported by drag/gravity/
buoyancy with Newmark time integration (dt = 1e-4 s), and deposit on airway
walls.  The *load-balance* signature is the point: at injection all
particles sit in one or few MPI subdomains (L96 = 0.02 in Table 1), and they
spread as the simulation advances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from ..mesh.generator import AirwayMesh
from ..perf import toggles as _perf_toggles
from .flowfield import AirwayFlow
from .forces import (
    FluidProperties,
    ParticleProperties,
    drag_linear_coefficient_d,
    gravity_buoyancy_acceleration,
    particle_mass,
)

__all__ = ["ParticleState", "NewmarkTracker", "inject_at_inlet",
           "ElementLocator", "STATUS_ACTIVE", "STATUS_DEPOSITED",
           "STATUS_ESCAPED"]

STATUS_ACTIVE = 0
STATUS_DEPOSITED = 1
STATUS_ESCAPED = 2


@dataclass
class ParticleState:
    """Positions/velocities/status of a particle population.

    ``diameter`` is optional: when present (one entry per particle) the
    population is polydisperse and the tracker uses per-particle drag.
    """

    x: np.ndarray                    # (n, 3)
    v: np.ndarray                    # (n, 3)
    a: np.ndarray                    # (n, 3) accelerations (Newmark state)
    status: np.ndarray               # (n,) int8
    diameter: Optional[np.ndarray] = None   # (n,) per-particle diameters

    @classmethod
    def empty(cls) -> "ParticleState":
        """A population with no particles."""
        return cls(x=np.zeros((0, 3)), v=np.zeros((0, 3)),
                   a=np.zeros((0, 3)), status=np.zeros(0, dtype=np.int8))

    @property
    def n(self) -> int:
        """Total particles (any status)."""
        return len(self.status)

    @property
    def active(self) -> np.ndarray:
        """Boolean mask of still-moving particles."""
        return self.status == STATUS_ACTIVE

    @property
    def n_active(self) -> int:
        """Number of still-moving particles."""
        return int(self.active.sum())

    def counts(self) -> dict:
        """Histogram {status: count}."""
        return {s: int((self.status == s).sum())
                for s in (STATUS_ACTIVE, STATUS_DEPOSITED, STATUS_ESCAPED)}

    def extend(self, other: "ParticleState") -> None:
        """Append another population in place (repeated injections — the
        paper's pollutant-inhalation scenario injects particles several
        times during the simulation)."""
        if (self.diameter is None) != (other.diameter is None) and self.n:
            raise ValueError(
                "cannot mix mono- and polydisperse populations")
        self.x = np.concatenate([self.x, other.x])
        self.v = np.concatenate([self.v, other.v])
        self.a = np.concatenate([self.a, other.a])
        self.status = np.concatenate([self.status, other.status])
        if other.diameter is not None:
            base = (self.diameter if self.diameter is not None
                    else np.zeros(0))
            self.diameter = np.concatenate([base, other.diameter])


def inject_at_inlet(airway: AirwayMesh, n_particles: int,
                    seed: int = 0,
                    speed_fraction: float = 0.5,
                    diameters: Optional[np.ndarray] = None) -> ParticleState:
    """Inject ``n_particles`` uniformly over the inlet disk (nasal orifice).

    Initial velocity is ``speed_fraction`` of the local fluid velocity along
    the inlet axis (aerosol entrained by the inhalation).  Pass
    ``diameters`` (n,) for a polydisperse population (e.g. from
    :func:`repro.particles.lognormal_diameters`).
    """
    if n_particles < 0:
        raise ValueError("n_particles must be >= 0")
    if diameters is not None:
        diameters = np.asarray(diameters, dtype=np.float64)
        if diameters.shape != (n_particles,):
            raise ValueError(
                f"diameters must be ({n_particles},), got {diameters.shape}")
        if (diameters <= 0).any():
            raise ValueError("diameters must be positive")
    center, axis, radius = airway.inlet_disk()
    rng = np.random.default_rng(seed)
    # uniform over the disk, slightly inside the wall
    r = 0.95 * radius * np.sqrt(rng.uniform(size=n_particles))
    theta = rng.uniform(0.0, 2.0 * np.pi, size=n_particles)
    helper = np.array([1.0, 0.0, 0.0])
    if abs(np.dot(helper, axis)) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    u = np.cross(axis, helper)
    u /= np.linalg.norm(u)
    w = np.cross(axis, u)
    offset = 1e-4 * radius  # nudge inside the tube
    x = (center[None, :] + axis[None, :] * offset
         + r[:, None] * (np.cos(theta)[:, None] * u[None, :]
                         + np.sin(theta)[:, None] * w[None, :]))
    flow = AirwayFlow(airway.segments)
    v = speed_fraction * flow.velocity(x)
    return ParticleState(x=x, v=v, a=np.zeros_like(x),
                         status=np.zeros(n_particles, dtype=np.int8),
                         diameter=diameters)


class NewmarkTracker:
    """Newmark time integrator for particle transport.

    Uses the standard constant-average-acceleration parameters
    (beta = 1/4, gamma = 1/2) with the drag linearized at the current
    relative velocity (semi-implicit), so the stiff small-particle drag
    (relaxation time ~ 5e-5 s vs dt = 1e-4 s) stays stable.
    """

    def __init__(self, flow: AirwayFlow,
                 particles: Optional[ParticleProperties] = None,
                 fluid: Optional[FluidProperties] = None,
                 beta: float = 0.25, gamma: float = 0.5):
        self.flow = flow
        self.particles = particles or ParticleProperties()
        self.fluid = fluid or FluidProperties()
        self.beta = beta
        self.gamma = gamma
        self._g_eff = gravity_buoyancy_acceleration(self.particles,
                                                    self.fluid)

    def step(self, state: ParticleState, dt: float) -> ParticleState:
        """Advance active particles by ``dt`` and apply wall/outlet rules."""
        act = state.active
        if not act.any():
            return state
        x, v, a = state.x[act], state.v[act], state.a[act]
        if state.diameter is not None:
            d = state.diameter[act]
            m = particle_mass(d, self.particles.density)[:, None]
        else:
            d = np.full(act.sum(), self.particles.diameter)
            m = self.particles.mass
        u_f = self.flow.velocity(x)
        k = drag_linear_coefficient_d(u_f, v, d, self.fluid)[:, None]
        # Newmark: v1 = v + dt[(1-g) a0 + g a1],  a1 = (k (u_f - v1))/m + g_eff
        # solve for v1 (k treated constant over the step):
        #   v1 (1 + g dt k/m) = v + dt (1-g) a0 + g dt (k u_f / m + g_eff)
        gdt = self.gamma * dt
        denom = 1.0 + gdt * k / m
        v1 = (v + dt * (1.0 - self.gamma) * a
              + gdt * (k * u_f / m + self._g_eff)) / denom
        a1 = k * (u_f - v1) / m + self._g_eff
        x1 = (x + dt * v
              + dt * dt * ((0.5 - self.beta) * a + self.beta * a1))
        state.x[act], state.v[act], state.a[act] = x1, v1, a1
        self._apply_boundaries(state)
        return state

    def _apply_boundaries(self, state: ParticleState) -> None:
        act = state.active
        if not act.any():
            return
        idx = np.nonzero(act)[0]
        seg_idx, axial, radial = self.flow.locate(state.x[act])
        deposited = radial >= 1.0
        at_outlet = (self.flow.is_terminal(seg_idx) & (axial >= 1.0 - 1e-9)
                     & ~deposited)
        state.status[idx[deposited]] = STATUS_DEPOSITED
        state.status[idx[at_outlet]] = STATUS_ESCAPED
        # freeze non-active particles
        frozen = idx[deposited | at_outlet]
        state.v[frozen] = 0.0
        state.a[frozen] = 0.0


class ElementLocator:
    """Maps particle positions to mesh elements / owning MPI ranks.

    Nearest-centroid lookup via a KD-tree — the simulated equivalent of
    Alya's element search, sufficient because ownership (hence load) is what
    the experiments measure.
    """

    def __init__(self, airway: AirwayMesh, labels: Optional[np.ndarray] = None):
        self.mesh = airway.mesh
        self._tree = cKDTree(self.mesh.centroids())
        self.labels = labels
        self._fast = _perf_toggles.TOGGLES.locator_active_only
        # Per-particle element cache for population-level queries: a frozen
        # (deposited/escaped) particle never moves again, so its element is
        # located once and reused every subsequent step.
        self._cached_eids = np.zeros(0, dtype=np.intp)
        self._cached_valid = np.zeros(0, dtype=bool)

    def elements_of(self, points: np.ndarray) -> np.ndarray:
        """Nearest element id for each point."""
        if len(points) == 0:
            return np.zeros(0, dtype=np.int64)
        _, eids = self._tree.query(points)
        return eids

    def elements_of_state(self, state: "ParticleState") -> np.ndarray:
        """Nearest element id for each particle of ``state`` (any status).

        Unlike :meth:`elements_of`, this only walks the KD-tree for the
        STATUS_ACTIVE particles (plus newly frozen ones, once): deposited
        and escaped particles are stationary, so their cached element
        assignment from the step they froze stays valid forever.
        """
        eids, _ = self._locate_state(state)
        return eids.copy()

    def _locate_state(self, state: "ParticleState"):
        """(element ids view into the cache, active mask) for ``state``.

        The returned array aliases the internal cache — callers must not
        mutate it and must copy before handing it out.
        """
        n = state.n
        active = state.status == STATUS_ACTIVE
        if not self._fast:
            return (self.elements_of(state.x).astype(np.intp, copy=False),
                    active)
        if len(self._cached_eids) < n:
            # population grew (repeated injections): extend the cache
            grow = n - len(self._cached_eids)
            self._cached_eids = np.concatenate(
                [self._cached_eids, np.zeros(grow, dtype=np.intp)])
            self._cached_valid = np.concatenate(
                [self._cached_valid, np.zeros(grow, dtype=bool)])
        eids = self._cached_eids[:n]
        valid = self._cached_valid[:n]
        need = active | ~valid
        if need.any():
            _, found = self._tree.query(state.x[need])
            eids[need] = found
            # frozen particles just located stay cached; active ones move
            # and must be re-queried next call
            valid[need] = ~active[need]
        return eids, active

    def owners_of(self, points: np.ndarray) -> np.ndarray:
        """Owning MPI rank for each point (requires ``labels``)."""
        if self.labels is None:
            raise ValueError("locator built without a rank partition")
        return self.labels[self.elements_of(points)]

    def rank_histogram(self, points: np.ndarray, nranks: int) -> np.ndarray:
        """Particle count per rank."""
        owners = self.owners_of(points)
        return np.bincount(owners, minlength=nranks)

    def rank_histogram_state(self, state: "ParticleState",
                             nranks: int) -> np.ndarray:
        """Active-particle count per owning rank (requires ``labels``).

        Equivalent to ``rank_histogram(state.x[state.active], nranks)`` but
        KD-tree queries are restricted to the active particles.
        """
        if self.labels is None:
            raise ValueError("locator built without a rank partition")
        eids, active = self._locate_state(state)
        owners = self.labels[eids[active]]
        return np.bincount(owners, minlength=nranks)
