"""Lagrangian particle tracking: Newmark integration, injection, deposition,
and rank ownership for migration.

Matches the paper's setup (Sec. 2.1): particles are injected through the
nasal orifice during the first time step, transported by drag/gravity/
buoyancy with Newmark time integration (dt = 1e-4 s), and deposit on airway
walls.  The *load-balance* signature is the point: at injection all
particles sit in one or few MPI subdomains (L96 = 0.02 in Table 1), and they
spread as the simulation advances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from ..mesh.generator import AirwayMesh
from ..perf import toggles as _perf_toggles
from .flowfield import AirwayFlow
from .forces import (
    FluidProperties,
    ParticleProperties,
    drag_linear_coefficient_d,
    gravity_buoyancy_acceleration,
    particle_mass,
)

__all__ = ["ParticleState", "NewmarkTracker", "inject_at_inlet",
           "ElementLocator", "STATUS_ACTIVE", "STATUS_DEPOSITED",
           "STATUS_ESCAPED"]

STATUS_ACTIVE = 0
STATUS_DEPOSITED = 1
STATUS_ESCAPED = 2


@dataclass
class ParticleState:
    """Positions/velocities/status of a particle population.

    ``diameter`` is optional: when present (one entry per particle) the
    population is polydisperse and the tracker uses per-particle drag.
    """

    x: np.ndarray                    # (n, 3)
    v: np.ndarray                    # (n, 3)
    a: np.ndarray                    # (n, 3) accelerations (Newmark state)
    status: np.ndarray               # (n,) int8
    diameter: Optional[np.ndarray] = None   # (n,) per-particle diameters

    @classmethod
    def empty(cls) -> "ParticleState":
        """A population with no particles."""
        return cls(x=np.zeros((0, 3)), v=np.zeros((0, 3)),
                   a=np.zeros((0, 3)), status=np.zeros(0, dtype=np.int8))

    @property
    def n(self) -> int:
        """Total particles (any status)."""
        return len(self.status)

    @property
    def active(self) -> np.ndarray:
        """Boolean mask of still-moving particles."""
        return self.status == STATUS_ACTIVE

    @property
    def n_active(self) -> int:
        """Number of still-moving particles."""
        return int(self.active.sum())

    def counts(self) -> dict:
        """Histogram {status: count}."""
        return {s: int((self.status == s).sum())
                for s in (STATUS_ACTIVE, STATUS_DEPOSITED, STATUS_ESCAPED)}

    def extend(self, other: "ParticleState") -> None:
        """Append another population in place (repeated injections — the
        paper's pollutant-inhalation scenario injects particles several
        times during the simulation)."""
        if self.n == 0:
            # an empty population carries no dispersity commitment; adopt
            # the incoming one (a zero-length polydisperse remnant from an
            # earlier extend must not survive into a monodisperse append,
            # or ``diameter`` falls out of sync with ``status``)
            self.diameter = None
        if (self.diameter is None) != (other.diameter is None) and self.n:
            raise ValueError(
                "cannot mix mono- and polydisperse populations")
        self.x = np.concatenate([self.x, other.x])
        self.v = np.concatenate([self.v, other.v])
        self.a = np.concatenate([self.a, other.a])
        self.status = np.concatenate([self.status, other.status])
        if other.diameter is not None:
            base = (self.diameter if self.diameter is not None
                    else np.zeros(0))
            self.diameter = np.concatenate([base, other.diameter])
        self.check_invariants()

    def check_invariants(self) -> None:
        """Raise if array lengths fell out of sync (defensive guard)."""
        n = self.n
        for name in ("x", "v", "a"):
            arr = getattr(self, name)
            if arr.shape != (n, 3):
                raise ValueError(
                    f"ParticleState.{name} has shape {arr.shape}, "
                    f"expected ({n}, 3)")
        if self.diameter is not None and self.diameter.shape != (n,):
            raise ValueError(
                f"ParticleState.diameter has length "
                f"{len(self.diameter)}, expected {n}")


def inject_at_inlet(airway: AirwayMesh, n_particles: int,
                    seed: int = 0,
                    speed_fraction: float = 0.5,
                    diameters: Optional[np.ndarray] = None) -> ParticleState:
    """Inject ``n_particles`` uniformly over the inlet disk (nasal orifice).

    Initial velocity is ``speed_fraction`` of the local fluid velocity along
    the inlet axis (aerosol entrained by the inhalation).  Pass
    ``diameters`` (n,) for a polydisperse population (e.g. from
    :func:`repro.particles.lognormal_diameters`).
    """
    if n_particles < 0:
        raise ValueError("n_particles must be >= 0")
    if diameters is not None:
        diameters = np.asarray(diameters, dtype=np.float64)
        if diameters.shape != (n_particles,):
            raise ValueError(
                f"diameters must be ({n_particles},), got {diameters.shape}")
        if (diameters <= 0).any():
            raise ValueError("diameters must be positive")
    center, axis, radius = airway.inlet_disk()
    rng = np.random.default_rng(seed)
    # uniform over the disk, slightly inside the wall
    r = 0.95 * radius * np.sqrt(rng.uniform(size=n_particles))
    theta = rng.uniform(0.0, 2.0 * np.pi, size=n_particles)
    helper = np.array([1.0, 0.0, 0.0])
    if abs(np.dot(helper, axis)) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    u = np.cross(axis, helper)
    u /= np.linalg.norm(u)
    w = np.cross(axis, u)
    offset = 1e-4 * radius  # nudge inside the tube
    x = (center[None, :] + axis[None, :] * offset
         + r[:, None] * (np.cos(theta)[:, None] * u[None, :]
                         + np.sin(theta)[:, None] * w[None, :]))
    flow = AirwayFlow(airway.segments)
    v = speed_fraction * flow.velocity(x)
    return ParticleState(x=x, v=v, a=np.zeros_like(x),
                         status=np.zeros(n_particles, dtype=np.int8),
                         diameter=diameters)


class _NewmarkBuffers:
    """Preallocated buffers for the fused Newmark update (one per tracker,
    grown to the largest active count seen; sliced per step)."""

    def __init__(self, n: int):
        self.capacity = n
        self.k1 = np.empty((n, 1))
        self.denom = np.empty((n, 1))
        self.t1 = np.empty((n, 3))
        self.t2 = np.empty((n, 3))
        self.v1 = np.empty((n, 3))
        self.a1 = np.empty((n, 3))
        self.x1 = np.empty((n, 3))


class NewmarkTracker:
    """Newmark time integrator for particle transport.

    Uses the standard constant-average-acceleration parameters
    (beta = 1/4, gamma = 1/2) with the drag linearized at the current
    relative velocity (semi-implicit), so the stiff small-particle drag
    (relaxation time ~ 5e-5 s vs dt = 1e-4 s) stays stable.
    """

    def __init__(self, flow: AirwayFlow,
                 particles: Optional[ParticleProperties] = None,
                 fluid: Optional[FluidProperties] = None,
                 beta: float = 0.25, gamma: float = 0.5):
        self.flow = flow
        self.particles = particles or ParticleProperties()
        self.fluid = fluid or FluidProperties()
        self.beta = beta
        self.gamma = gamma
        self._g_eff = gravity_buoyancy_acceleration(self.particles,
                                                    self.fluid)
        # toggles captured at construction (long-lived object)
        self._compact = _perf_toggles.TOGGLES.particle_compaction
        self._fused = _perf_toggles.TOGGLES.particle_fused_step
        # locate reuse needs the split locate/velocity API; other carrier
        # fields (e.g. MeshVelocityField hybrids) keep the plain path
        self._fused_velocity = (self._fused
                                and hasattr(flow, "velocity_from_locate"))
        # active-set compaction: a stable permutation of particle ids with
        # the active ones in a contiguous prefix; frozen particles swap to
        # the tail once.  ``_status_ref`` detects external status edits.
        self._order: Optional[np.ndarray] = None
        self._nact = 0
        self._status_ref: Optional[np.ndarray] = None
        # cross-step locate reuse (fused): the boundary pass locates every
        # active particle's *post-move* position; those positions are
        # exactly what the next step's velocity evaluation locates again.
        # Cached per absolute particle id; a bitwise position comparison
        # guards against external mutation, so reuse is exact.
        self._loc_x: Optional[np.ndarray] = None      # (n, 3)
        self._loc_seg: Optional[np.ndarray] = None    # (n,)
        self._loc_radial: Optional[np.ndarray] = None  # (n,)
        self._loc_valid: Optional[np.ndarray] = None  # (n,) bool
        self._newmark_ws: Optional[_NewmarkBuffers] = None

    def _active_indices(self, state: ParticleState) -> np.ndarray:
        """Ids of active particles — ascending, or the compacted prefix."""
        if not self._compact:
            return np.nonzero(state.status == STATUS_ACTIVE)[0]
        n = state.n
        if (self._order is None or len(self._order) != n
                or not np.array_equal(state.status, self._status_ref)):
            # (re)build: injections or external status edits invalidate
            active = np.nonzero(state.status == STATUS_ACTIVE)[0]
            rest = np.nonzero(state.status != STATUS_ACTIVE)[0]
            self._order = np.concatenate([active, rest])
            self._nact = len(active)
            self._status_ref = state.status.copy()
        return self._order[:self._nact]

    def _fluid_velocity(self, state: ParticleState, idx: np.ndarray,
                        x: np.ndarray) -> np.ndarray:
        """Carrier velocity at ``x`` (= ``state.x[idx]``).

        Fused path: rows whose position is bitwise-equal to the one the
        previous boundary pass located reuse that locate result — the
        velocity profile is then applied through
        :meth:`AirwayFlow.velocity_from_locate`, the exact op sequence of
        :meth:`AirwayFlow.velocity`.
        """
        if not self._fused_velocity:
            return self.flow.velocity(x)
        n = state.n
        if self._loc_valid is None or len(self._loc_valid) != n:
            self._loc_x = np.zeros((n, 3))
            self._loc_seg = np.zeros(n, dtype=np.intp)
            self._loc_radial = np.zeros(n)
            self._loc_valid = np.zeros(n, dtype=bool)
        ok = self._loc_valid[idx]
        np.logical_and(ok, (self._loc_x[idx] == x).all(axis=1), out=ok)
        if ok.all():
            seg_idx = self._loc_seg[idx]
            radial = self._loc_radial[idx]
        elif not ok.any():
            seg_idx, _, radial = self.flow.locate(x)
        else:
            seg_idx = np.empty(len(idx), dtype=np.intp)
            radial = np.empty(len(idx))
            hit = idx[ok]
            seg_idx[ok] = self._loc_seg[hit]
            radial[ok] = self._loc_radial[hit]
            miss = ~ok
            s_m, _, r_m = self.flow.locate(x[miss])
            seg_idx[miss] = s_m
            radial[miss] = r_m
        return self.flow.velocity_from_locate(seg_idx, radial)

    def step(self, state: ParticleState, dt: float,
             flow_scale: float = 1.0) -> ParticleState:
        """Advance active particles by ``dt`` and apply wall/outlet rules.

        ``flow_scale`` uniformly scales the carrier velocity the particles
        feel — the hook the breathing-cycle waveforms use to expose the
        inhale/pause/exhale transient to the drag force.  The default 1.0
        takes the exact pre-existing code path (no multiply), so legacy
        trajectories replay bit for bit; any other value scales ``u_f``
        identically in the fused and plain Newmark paths.
        """
        idx = self._active_indices(state)
        if len(idx) == 0:
            return state
        x, v, a = state.x[idx], state.v[idx], state.a[idx]
        if state.diameter is not None:
            d = state.diameter[idx]
            m = particle_mass(d, self.particles.density)[:, None]
        else:
            d = np.full(len(idx), self.particles.diameter)
            m = self.particles.mass
        u_f = self._fluid_velocity(state, idx, x)
        if flow_scale != 1.0:
            u_f = u_f * flow_scale
        k = drag_linear_coefficient_d(u_f, v, d, self.fluid)[:, None]
        # Newmark: v1 = v + dt[(1-g) a0 + g a1],  a1 = (k (u_f - v1))/m + g_eff
        # solve for v1 (k treated constant over the step):
        #   v1 (1 + g dt k/m) = v + dt (1-g) a0 + g dt (k u_f / m + g_eff)
        gdt = self.gamma * dt
        if self._fused:
            x1, v1, a1 = self._newmark_fused(x, v, a, u_f, k, m, dt, gdt)
        else:
            denom = 1.0 + gdt * k / m
            v1 = (v + dt * (1.0 - self.gamma) * a
                  + gdt * (k * u_f / m + self._g_eff)) / denom
            a1 = k * (u_f - v1) / m + self._g_eff
            x1 = (x + dt * v
                  + dt * dt * ((0.5 - self.beta) * a + self.beta * a1))
        state.x[idx], state.v[idx], state.a[idx] = x1, v1, a1
        self._apply_boundaries(state, idx, x1)
        return state

    def _newmark_fused(self, x, v, a, u_f, k, m, dt, gdt):
        """The Newmark update through preallocated buffers.

        Every ``out=`` ufunc call mirrors one node of the baseline
        expression tree; the only reorderings are scalar-side swaps of
        commutative IEEE add/multiply, which are bitwise-exact.
        """
        n = len(x)
        w = self._newmark_ws
        if w is None or w.capacity < n:
            w = self._newmark_ws = _NewmarkBuffers(
                max(n, 2 * (w.capacity if w else 0)))
        k1, denom = w.k1[:n], w.denom[:n]
        t1, t2 = w.t1[:n], w.t2[:n]
        v1, a1, x1 = w.v1[:n], w.a1[:n], w.x1[:n]
        # denom = 1.0 + gdt * k / m
        np.multiply(k, gdt, out=k1)
        np.divide(k1, m, out=k1)
        np.add(k1, 1.0, out=denom)
        # v1 = (v + dt (1-g) a + gdt (k u_f / m + g_eff)) / denom
        np.multiply(k, u_f, out=t1)
        np.divide(t1, m, out=t1)
        np.add(t1, self._g_eff, out=t1)
        np.multiply(t1, gdt, out=t1)
        np.multiply(a, dt * (1.0 - self.gamma), out=t2)
        np.add(v, t2, out=t2)
        np.add(t2, t1, out=t2)
        np.divide(t2, denom, out=v1)
        # a1 = k (u_f - v1) / m + g_eff
        np.subtract(u_f, v1, out=t1)
        np.multiply(k, t1, out=t1)
        np.divide(t1, m, out=t1)
        np.add(t1, self._g_eff, out=a1)
        # x1 = x + dt v + dt^2 ((0.5-b) a + b a1)
        np.multiply(a, 0.5 - self.beta, out=t1)
        np.multiply(a1, self.beta, out=t2)
        np.add(t1, t2, out=t1)
        np.multiply(t1, dt * dt, out=t1)
        np.multiply(v, dt, out=t2)
        np.add(x, t2, out=t2)
        np.add(t2, t1, out=x1)
        return x1, v1, a1

    def _apply_boundaries(self, state: ParticleState,
                          idx: Optional[np.ndarray] = None,
                          x1: Optional[np.ndarray] = None) -> None:
        if idx is None:
            idx = self._active_indices(state)
        if len(idx) == 0:
            return
        if x1 is None:
            x1 = state.x[idx]
        seg_idx, axial, radial = self.flow.locate(x1)
        deposited = radial >= 1.0
        at_outlet = (self.flow.is_terminal(seg_idx) & (axial >= 1.0 - 1e-9)
                     & ~deposited)
        state.status[idx[deposited]] = STATUS_DEPOSITED
        state.status[idx[at_outlet]] = STATUS_ESCAPED
        # freeze non-active particles
        frozen_mask = deposited | at_outlet
        frozen = idx[frozen_mask]
        state.v[frozen] = 0.0
        state.a[frozen] = 0.0
        if (self._fused_velocity and self._loc_valid is not None
                and len(self._loc_valid) == state.n):
            self._loc_x[idx] = x1
            self._loc_seg[idx] = seg_idx
            self._loc_radial[idx] = radial
            self._loc_valid[idx] = True
        if self._compact and self._order is not None and len(frozen):
            # stable swap-to-tail: survivors keep their relative order,
            # the newly frozen join the head of the frozen tail
            keep = idx[~frozen_mask]
            self._order[:len(keep)] = keep
            self._order[len(keep):self._nact] = frozen
            self._nact = len(keep)
            self._status_ref[frozen] = state.status[frozen]


class ElementLocator:
    """Maps particle positions to mesh elements / owning MPI ranks.

    Nearest-centroid lookup via a KD-tree — the simulated equivalent of
    Alya's element search, sufficient because ownership (hence load) is what
    the experiments measure.
    """

    def __init__(self, airway: AirwayMesh, labels: Optional[np.ndarray] = None):
        self.mesh = airway.mesh
        self._centroids = self.mesh.centroids()
        self._tree = cKDTree(self._centroids)
        self.labels = labels
        self._warm = _perf_toggles.TOGGLES.particle_warm_start
        # warm-start subsumes the PR 2 frozen-particle cache
        self._fast = _perf_toggles.TOGGLES.locator_active_only or self._warm
        self._adj = None          # ElementAdjacency, built on first warm use
        # Per-particle element cache for population-level queries: a frozen
        # (deposited/escaped) particle never moves again, so its element is
        # located once and reused every subsequent step.  ``_cached_eids``
        # doubles as the warm-start host guess for particles whose host was
        # located on *any* earlier call (``_host_known``).
        self._cached_eids = np.zeros(0, dtype=np.intp)
        self._cached_valid = np.zeros(0, dtype=bool)
        self._host_known = np.zeros(0, dtype=bool)

    def elements_of(self, points: np.ndarray) -> np.ndarray:
        """Nearest element id for each point."""
        if len(points) == 0:
            return np.zeros(0, dtype=np.intp)
        _, eids = self._tree.query(points)
        return eids.astype(np.intp, copy=False)

    def elements_of_state(self, state: "ParticleState") -> np.ndarray:
        """Nearest element id for each particle of ``state`` (any status).

        Unlike :meth:`elements_of`, this only walks the KD-tree for the
        STATUS_ACTIVE particles (plus newly frozen ones, once): deposited
        and escaped particles are stationary, so their cached element
        assignment from the step they froze stays valid forever.
        """
        eids, _ = self._locate_state(state)
        return eids.copy()

    def _locate_state(self, state: "ParticleState"):
        """(element ids view into the cache, active mask) for ``state``.

        The returned array aliases the internal cache — callers must not
        mutate it and must copy before handing it out.
        """
        n = state.n
        active = state.status == STATUS_ACTIVE
        if not self._fast:
            return (self.elements_of(state.x).astype(np.intp, copy=False),
                    active)
        if len(self._cached_eids) < n:
            # population grew (repeated injections): extend the cache
            grow = n - len(self._cached_eids)
            self._cached_eids = np.concatenate(
                [self._cached_eids, np.zeros(grow, dtype=np.intp)])
            self._cached_valid = np.concatenate(
                [self._cached_valid, np.zeros(grow, dtype=bool)])
            self._host_known = np.concatenate(
                [self._host_known, np.zeros(grow, dtype=bool)])
        eids = self._cached_eids[:n]
        valid = self._cached_valid[:n]
        need = active | ~valid
        if need.any():
            need_idx = np.nonzero(need)[0]
            if self._warm:
                if self._adj is None:
                    from ..fem.geometry import element_adjacency
                    from .locator_fast import squared_radii
                    self._adj = element_adjacency(self.mesh)
                    self._r2 = squared_radii(self._adj)
                known = self._host_known[need_idx]
                warm_idx = need_idx[known]
                cold_idx = need_idx[~known]
                if len(warm_idx):
                    from .locator_fast import warm_locate
                    found, _ = warm_locate(
                        self._tree, self._centroids, self._adj,
                        state.x[warm_idx], eids[warm_idx], r2=self._r2)
                    eids[warm_idx] = found
            else:
                cold_idx = need_idx
            if len(cold_idx):
                _, found = self._tree.query(state.x[cold_idx])
                eids[cold_idx] = found
            self._host_known[need_idx] = True
            # frozen particles just located stay cached; active ones move
            # and must be re-queried next call
            valid[need] = ~active[need]
        return eids, active

    def owners_of(self, points: np.ndarray) -> np.ndarray:
        """Owning MPI rank for each point (requires ``labels``)."""
        if self.labels is None:
            raise ValueError("locator built without a rank partition")
        return self.labels[self.elements_of(points)]

    def rank_histogram(self, points: np.ndarray, nranks: int) -> np.ndarray:
        """Particle count per rank."""
        owners = self.owners_of(points)
        return np.bincount(owners, minlength=nranks)

    def rank_histogram_state(self, state: "ParticleState",
                             nranks: int) -> np.ndarray:
        """Active-particle count per owning rank (requires ``labels``).

        Equivalent to ``rank_histogram(state.x[state.active], nranks)`` but
        KD-tree queries are restricted to the active particles.
        """
        if self.labels is None:
            raise ValueError("locator built without a rank partition")
        eids, active = self._locate_state(state)
        owners = self.labels[eids[active]]
        return np.bincount(owners, minlength=nranks)
