"""Physics validation helpers: deposition-efficiency curves.

The standard way to validate inertial aerosol deposition models (and how
experimental nasal/airway data is reported, e.g. Cheng 2003) is the
deposition efficiency as a function of the **impaction parameter**

    IP = rho_p d_p^2 Q        [kg m^-1 s^-1 ~ conventionally g cm^3/s-ish]

Efficiency grows sigmoidally with IP: small/slow particles follow the flow,
large/fast particles can't turn at bends and bifurcations.  The tests use
these helpers to check our Ganser-drag + Newmark transport reproduces that
monotone dependence on both particle size and flow rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mesh.generator import AirwayMesh
from .flowfield import AirwayFlow
from .forces import ParticleProperties
from .tracker import (
    NewmarkTracker,
    STATUS_ACTIVE,
    STATUS_DEPOSITED,
    inject_at_inlet,
)

__all__ = ["DepositionPoint", "impaction_parameter", "deposition_curve"]


@dataclass(frozen=True)
class DepositionPoint:
    """One point of a deposition-efficiency curve."""

    diameter: float
    flow_rate: float
    impaction: float          # rho d^2 Q
    deposited_fraction: float
    airborne_fraction: float


def impaction_parameter(diameter: float, flow_rate: float,
                        density: float = 1000.0) -> float:
    """The classic inertial impaction parameter rho d^2 Q."""
    return density * diameter ** 2 * flow_rate


def deposition_curve(airway: AirwayMesh,
                     diameters_um=(1.0, 2.0, 5.0, 10.0, 20.0),
                     flow_rate: float = 1.0e-3,
                     n_particles: int = 400,
                     n_steps: int = 600,
                     dt: float = 1e-4,
                     density: float = 1000.0,
                     seed: int = 0) -> list[DepositionPoint]:
    """Deposition efficiency vs particle size at a fixed inhalation rate.

    Runs one monodisperse transport per diameter and reports the deposited
    fraction of the *settled* population (deposited + escaped).
    """
    flow = AirwayFlow(airway.segments, inlet_flow_rate=flow_rate)
    points = []
    for d_um in diameters_um:
        d = d_um * 1e-6
        particles = ParticleProperties(diameter=d, density=density)
        state = inject_at_inlet(airway, n_particles, seed=seed)
        tracker = NewmarkTracker(flow, particles=particles)
        for _ in range(n_steps):
            if state.n_active == 0:
                break
            tracker.step(state, dt)
        counts = state.counts()
        settled = n_particles - counts[STATUS_ACTIVE]
        deposited = counts[STATUS_DEPOSITED]
        points.append(DepositionPoint(
            diameter=d,
            flow_rate=flow_rate,
            impaction=impaction_parameter(d, flow_rate, density),
            deposited_fraction=(deposited / settled if settled
                                else 0.0),
            airborne_fraction=counts[STATUS_ACTIVE] / n_particles))
    return points
