"""Lagrangian particle transport: forces (Ganser drag, gravity, buoyancy),
the analytic airway flow field, Newmark tracking, injection and ownership."""

from .flowfield import AirwayFlow
from .forces import (
    FluidProperties,
    GRAVITY,
    ParticleProperties,
    drag_force,
    drag_linear_coefficient,
    drag_linear_coefficient_d,
    ganser_cd,
    gravity_buoyancy_acceleration,
    lognormal_diameters,
    particle_mass,
    reynolds,
)
from .interpolation import MeshVelocityField
from .validation import DepositionPoint, deposition_curve, impaction_parameter
from .tracker import (
    STATUS_ACTIVE,
    STATUS_DEPOSITED,
    STATUS_ESCAPED,
    ElementLocator,
    NewmarkTracker,
    ParticleState,
    inject_at_inlet,
)

__all__ = [
    "AirwayFlow",
    "ElementLocator",
    "FluidProperties",
    "GRAVITY",
    "MeshVelocityField",
    "NewmarkTracker",
    "ParticleProperties",
    "ParticleState",
    "STATUS_ACTIVE",
    "STATUS_DEPOSITED",
    "STATUS_ESCAPED",
    "DepositionPoint",
    "deposition_curve",
    "drag_force",
    "drag_linear_coefficient",
    "drag_linear_coefficient_d",
    "ganser_cd",
    "gravity_buoyancy_acceleration",
    "impaction_parameter",
    "inject_at_inlet",
    "lognormal_diameters",
    "particle_mass",
    "reynolds",
]
