"""Analytic carrier-flow field along the airway tree.

The paper solves the incompressible Navier-Stokes equations for the airflow
of a rapid inhalation; the aerosol is transported in that field.  Our
reproduction runs the *numerical machinery* of the fluid step (assembly,
Krylov solvers, SGS — see :mod:`repro.app`), but for transporting particles
we use a conservation-consistent analytic field over the airway tree:

* each segment carries a flow rate ``Q`` — the inlet flow, halved at every
  bifurcation (mass conservation over a symmetric tree);
* within a tube the velocity is a Poiseuille profile along the local axis:
  ``u = 2 (Q / pi R^2) (1 - (r/R)^2) d``.

This keeps the particle physics (drag toward the local fluid velocity,
gravitational drift, wall deposition) realistic while making experiments
deterministic and mesh-independent — the substitution recorded in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..mesh.airway import Segment

__all__ = ["AirwayFlow"]


@dataclass(frozen=True)
class _SegArrays:
    starts: np.ndarray      # (ns, 3)
    directions: np.ndarray  # (ns, 3)
    lengths: np.ndarray     # (ns,)
    radii: np.ndarray       # (ns,)
    umax: np.ndarray        # (ns,) peak axial velocity


class AirwayFlow:
    """Poiseuille flow over an airway tree.

    Parameters
    ----------
    segments:
        The centerline tree from :func:`repro.mesh.airway.build_airway_tree`.
    inlet_flow_rate:
        Volumetric flow through the face inlet in m^3/s.  The default of
        1 L/s corresponds to the rapid inhalation the paper simulates.
    """

    def __init__(self, segments: Sequence[Segment],
                 inlet_flow_rate: float = 1.0e-3):
        if inlet_flow_rate <= 0:
            raise ValueError("inlet_flow_rate must be positive")
        self.segments = list(segments)
        self.inlet_flow_rate = inlet_flow_rate
        n_children: dict[int, int] = {}
        for seg in self.segments:
            if seg.parent >= 0:
                n_children[seg.parent] = n_children.get(seg.parent, 0) + 1
        flow: dict[int, float] = {}
        for seg in self.segments:  # parents precede children
            if seg.parent < 0:
                flow[seg.sid] = inlet_flow_rate
            else:
                flow[seg.sid] = flow[seg.parent] / n_children[seg.parent]
        umax = np.array([2.0 * flow[s.sid] / (np.pi * s.radius ** 2)
                         for s in self.segments])
        self._arr = _SegArrays(
            starts=np.array([s.start for s in self.segments]),
            directions=np.array([s.direction for s in self.segments]),
            lengths=np.array([s.length for s in self.segments]),
            radii=np.array([s.radius for s in self.segments]),
            umax=umax)
        self.flow_rates = flow

    # -- geometry queries ------------------------------------------------------
    def locate(self, points: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """For each point: (segment index, axial fraction, radial fraction).

        The owning segment is the one containing the point (radial fraction
        <= 1 with axial projection inside [0, L]); ties and outside points
        resolve to the segment with the smallest radial fraction.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        a = self._arr
        rel = points[:, None, :] - a.starts[None, :, :]       # (np, ns, 3)
        t = np.einsum("psj,sj->ps", rel, a.directions)        # axial coord
        t_in = (t >= -1e-12) & (t <= a.lengths[None, :] + 1e-12)
        t_clamped = np.clip(t, 0.0, a.lengths[None, :])
        closest = (a.starts[None, :, :]
                   + t_clamped[:, :, None] * a.directions[None, :, :])
        r = np.linalg.norm(points[:, None, :] - closest, axis=2)
        rfrac = r / a.radii[None, :]
        # prefer segments whose axial span contains the point
        penalty = np.where(t_in, 0.0, 1e6)
        score = rfrac + penalty
        seg_idx = np.argmin(score, axis=1)
        rows = np.arange(len(points))
        axial = t_clamped[rows, seg_idx] / a.lengths[seg_idx]
        radial = rfrac[rows, seg_idx]
        return seg_idx, axial, radial

    def velocity(self, points: np.ndarray) -> np.ndarray:
        """Fluid velocity (n, 3) at ``points`` (zero outside the airway)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        seg_idx, _, radial = self.locate(points)
        a = self._arr
        profile = np.clip(1.0 - radial ** 2, 0.0, None)
        return (a.umax[seg_idx] * profile)[:, None] * a.directions[seg_idx]

    def nodal_velocity(self, coords: np.ndarray) -> np.ndarray:
        """Velocity sampled at mesh nodes (used as the resolved field)."""
        return self.velocity(coords)

    def wall_gap(self, points: np.ndarray) -> np.ndarray:
        """Distance fraction to the wall: 1 - r/R (negative = outside)."""
        _, _, radial = self.locate(points)
        return 1.0 - radial

    def is_terminal(self, seg_idx: np.ndarray) -> np.ndarray:
        """Whether the segment has no children (distal outlet)."""
        has_child = np.zeros(len(self.segments), dtype=bool)
        for seg in self.segments:
            if seg.parent >= 0:
                has_child[seg.parent] = True
        return ~has_child[seg_idx]
