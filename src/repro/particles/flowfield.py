"""Analytic carrier-flow field along the airway tree.

The paper solves the incompressible Navier-Stokes equations for the airflow
of a rapid inhalation; the aerosol is transported in that field.  Our
reproduction runs the *numerical machinery* of the fluid step (assembly,
Krylov solvers, SGS — see :mod:`repro.app`), but for transporting particles
we use a conservation-consistent analytic field over the airway tree:

* each segment carries a flow rate ``Q`` — the inlet flow, halved at every
  bifurcation (mass conservation over a symmetric tree);
* within a tube the velocity is a Poiseuille profile along the local axis:
  ``u = 2 (Q / pi R^2) (1 - (r/R)^2) d``.

This keeps the particle physics (drag toward the local fluid velocity,
gravitational drift, wall deposition) realistic while making experiments
deterministic and mesh-independent — the substitution recorded in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..mesh.airway import Segment
from ..perf import toggles as _perf_toggles

__all__ = ["AirwayFlow"]


class _LocateWorkspace:
    """Reusable buffers for the fused :meth:`AirwayFlow.locate` path.

    One (capacity, ns, 3) block plus per-coordinate (capacity, ns) planes;
    grown geometrically, sliced per call.  The fused path writes every
    intermediate into these with ``out=`` — the floating-point operations
    applied to each element are identical to the allocating baseline, so
    the returned values are bit-identical.
    """

    def __init__(self, n: int, ns: int):
        self.capacity = n
        self.ns = ns
        self.rel = np.empty((n, ns, 3))
        self.p0 = np.empty((n, ns))
        self.p1 = np.empty((n, ns))
        self.p2 = np.empty((n, ns))
        self.t = np.empty((n, ns))
        self.tc = np.empty((n, ns))
        self.r = np.empty((n, ns))
        self.pen = np.empty((n, ns))
        self.b1 = np.empty((n, ns), dtype=bool)
        self.b2 = np.empty((n, ns), dtype=bool)
        self.rows = np.arange(n)


@dataclass(frozen=True)
class _SegArrays:
    starts: np.ndarray      # (ns, 3)
    directions: np.ndarray  # (ns, 3)
    lengths: np.ndarray     # (ns,)
    radii: np.ndarray       # (ns,)
    umax: np.ndarray        # (ns,) peak axial velocity


class AirwayFlow:
    """Poiseuille flow over an airway tree.

    Parameters
    ----------
    segments:
        The centerline tree from :func:`repro.mesh.airway.build_airway_tree`.
    inlet_flow_rate:
        Volumetric flow through the face inlet in m^3/s.  The default of
        1 L/s corresponds to the rapid inhalation the paper simulates.
    """

    def __init__(self, segments: Sequence[Segment],
                 inlet_flow_rate: float = 1.0e-3):
        if inlet_flow_rate <= 0:
            raise ValueError("inlet_flow_rate must be positive")
        self.segments = list(segments)
        self.inlet_flow_rate = inlet_flow_rate
        n_children: dict[int, int] = {}
        for seg in self.segments:
            if seg.parent >= 0:
                n_children[seg.parent] = n_children.get(seg.parent, 0) + 1
        flow: dict[int, float] = {}
        for seg in self.segments:  # parents precede children
            if seg.parent < 0:
                flow[seg.sid] = inlet_flow_rate
            else:
                flow[seg.sid] = flow[seg.parent] / n_children[seg.parent]
        umax = np.array([2.0 * flow[s.sid] / (np.pi * s.radius ** 2)
                         for s in self.segments])
        self._arr = _SegArrays(
            starts=np.array([s.start for s in self.segments]),
            directions=np.array([s.direction for s in self.segments]),
            lengths=np.array([s.length for s in self.segments]),
            radii=np.array([s.radius for s in self.segments]),
            umax=umax)
        self.flow_rates = flow
        has_child = np.zeros(len(self.segments), dtype=bool)
        for seg in self.segments:
            if seg.parent >= 0:
                has_child[seg.parent] = True
        self._has_child = has_child
        self._len_hi = self._arr.lengths + 1e-12
        # contiguous per-coordinate rows for the fused plane kernels
        self._starts_T = np.ascontiguousarray(self._arr.starts.T)
        self._dirs_T = np.ascontiguousarray(self._arr.directions.T)
        self._ws: _LocateWorkspace | None = None

    # -- geometry queries ------------------------------------------------------
    def locate(self, points: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """For each point: (segment index, axial fraction, radial fraction).

        The owning segment is the one containing the point (radial fraction
        <= 1 with axial projection inside [0, L]); ties and outside points
        resolve to the segment with the smallest radial fraction.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        # stateless kernel: the toggle is read per call (the benchmark's
        # shared workload hands one AirwayFlow to both measurement phases)
        if _perf_toggles.TOGGLES.particle_fused_step and len(points):
            return self._locate_fused(points)
        a = self._arr
        rel = points[:, None, :] - a.starts[None, :, :]       # (np, ns, 3)
        t = np.einsum("psj,sj->ps", rel, a.directions)        # axial coord
        t_in = (t >= -1e-12) & (t <= a.lengths[None, :] + 1e-12)
        t_clamped = np.clip(t, 0.0, a.lengths[None, :])
        closest = (a.starts[None, :, :]
                   + t_clamped[:, :, None] * a.directions[None, :, :])
        r = np.linalg.norm(points[:, None, :] - closest, axis=2)
        rfrac = r / a.radii[None, :]
        # prefer segments whose axial span contains the point
        penalty = np.where(t_in, 0.0, 1e6)
        score = rfrac + penalty
        seg_idx = np.argmin(score, axis=1)
        rows = np.arange(len(points))
        axial = t_clamped[rows, seg_idx] / a.lengths[seg_idx]
        radial = rfrac[rows, seg_idx]
        return seg_idx, axial, radial

    def _locate_fused(self, points: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Buffered :meth:`locate`: per-element op sequence identical to
        the allocating baseline, zero large allocations after warm-up
        (toggle ``particle_fused_step``).

        The baseline's (n, ns, 3) broadcasts are restructured into three
        contiguous (n, ns) coordinate planes, which cuts the kernel's wall
        clock roughly in half.  Bit-identity is preserved because every
        element still sees the same scalar operations in the same order:
        the axial projection keeps the baseline's actual ``einsum`` (fed
        per-plane into the 3-D block), and the squared-distance sum
        ``(d0² + d1²) + d2²`` is exactly ``np.add.reduce``'s pairing over a
        length-3 axis.
        """
        a = self._arr
        n, ns = len(points), len(a.lengths)
        ws = self._ws
        if ws is None or ws.capacity < n or ws.ns != ns:
            ws = self._ws = _LocateWorkspace(max(n, 2 * (ws.capacity if ws
                                                         else 0)), ns)
        sx, dx = self._starts_T, self._dirs_T
        rel = ws.rel[:n]
        p0, p1, p2 = ws.p0[:n], ws.p1[:n], ws.p2[:n]
        t, tc, r, pen = ws.t[:n], ws.tc[:n], ws.r[:n], ws.pen[:n]
        b1, b2 = ws.b1[:n], ws.b2[:n]
        # rel = points - starts, one coordinate plane at a time
        for j in range(3):
            np.subtract(points[:, j][:, None], sx[j][None, :],
                        out=rel[:, :, j])
        np.einsum("psj,sj->ps", rel, a.directions, out=t)  # axial coord
        np.greater_equal(t, -1e-12, out=b1)
        np.less_equal(t, self._len_hi[None, :], out=b2)
        np.logical_and(b1, b2, out=b1)                 # t_in
        np.clip(t, 0.0, a.lengths[None, :], out=tc)
        # closest_j = starts_j + tc * dir_j; diff_j = points_j - closest_j;
        # then diff_j * diff_j, per coordinate plane
        for j, pj in ((0, p0), (1, p1), (2, p2)):
            np.multiply(tc, dx[j][None, :], out=pj)
            np.add(sx[j][None, :], pj, out=pj)
            np.subtract(points[:, j][:, None], pj, out=pj)
            np.multiply(pj, pj, out=pj)
        # np.linalg.norm(diff, axis=2): add.reduce over axis 2 pairs a
        # length-3 axis as (d0² + d1²) + d2², then sqrt
        np.add(p0, p1, out=r)
        np.add(r, p2, out=r)
        np.sqrt(r, out=r)
        np.divide(r, a.radii[None, :], out=r)          # rfrac
        np.logical_not(b1, out=b2)
        np.multiply(b2, 1e6, out=pen)                  # where(t_in, 0, 1e6)
        np.add(r, pen, out=pen)                        # score
        seg_idx = np.argmin(pen, axis=1)
        rows = ws.rows[:n]
        axial = tc[rows, seg_idx] / a.lengths[seg_idx]
        radial = r[rows, seg_idx]
        return seg_idx, axial, radial

    def velocity(self, points: np.ndarray) -> np.ndarray:
        """Fluid velocity (n, 3) at ``points`` (zero outside the airway)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        seg_idx, _, radial = self.locate(points)
        return self.velocity_from_locate(seg_idx, radial)

    def velocity_from_locate(self, seg_idx: np.ndarray,
                             radial: np.ndarray) -> np.ndarray:
        """Velocity from an existing :meth:`locate` result (the exact ops
        :meth:`velocity` applies after its internal locate)."""
        a = self._arr
        profile = np.clip(1.0 - radial ** 2, 0.0, None)
        return (a.umax[seg_idx] * profile)[:, None] * a.directions[seg_idx]

    def nodal_velocity(self, coords: np.ndarray) -> np.ndarray:
        """Velocity sampled at mesh nodes (used as the resolved field)."""
        return self.velocity(coords)

    def wall_gap(self, points: np.ndarray) -> np.ndarray:
        """Distance fraction to the wall: 1 - r/R (negative = outside)."""
        _, _, radial = self.locate(points)
        return 1.0 - radial

    def is_terminal(self, seg_idx: np.ndarray) -> np.ndarray:
        """Whether the segment has no children (distal outlet)."""
        return ~self._has_child[seg_idx]
