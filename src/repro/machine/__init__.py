"""Hardware models: cores (IPC/atomics/locality), nodes, interconnects,
clusters, and the calibrated MareNostrum4 / Thunder presets."""

from .arch import CoreModel, WorkSpec
from .cluster import ClusterModel, InterconnectModel, NodeModel, rank_to_node
from .energy import POWER_MODELS, PowerModel, energy_estimate
from .presets import PRESETS, get_cluster, marenostrum4, thunder

__all__ = [
    "CoreModel",
    "WorkSpec",
    "ClusterModel",
    "InterconnectModel",
    "NodeModel",
    "rank_to_node",
    "POWER_MODELS",
    "PRESETS",
    "PowerModel",
    "energy_estimate",
    "get_cluster",
    "marenostrum4",
    "thunder",
]
