"""Energy-to-solution estimation (the Mont-Blanc question).

The Thunder cluster exists because of the energy argument for Arm in HPC
(the paper's introduction cites the Mont-Blanc energy studies [5, 17, 20]).
This module adds a simple power model per cluster so runs can be compared
by energy-to-solution as well as time-to-solution:

    E = sum_r busy_r * P_active
      + (runtime * cores_used - sum_r busy_r) * P_idle
      + runtime * nodes * P_node_static

Power numbers are nominal per-core active/idle draws plus a static
per-node term (uncore, memory, fans), in the ballpark of published
measurements for Xeon Platinum (TDP 150 W / 24 cores) and ThunderX
(~120 W SoC for 48 cores).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PowerModel", "POWER_MODELS", "energy_estimate"]


@dataclass(frozen=True)
class PowerModel:
    """Per-core and per-node power draws in watts."""

    core_active_w: float
    core_idle_w: float
    node_static_w: float

    def __post_init__(self):
        if min(self.core_active_w, self.core_idle_w,
               self.node_static_w) < 0:
            raise ValueError("power draws must be non-negative")
        if self.core_idle_w > self.core_active_w:
            raise ValueError("idle power cannot exceed active power")


#: Nominal power models per cluster preset.
POWER_MODELS = {
    "MareNostrum4": PowerModel(core_active_w=5.0, core_idle_w=1.2,
                               node_static_w=110.0),
    "Thunder": PowerModel(core_active_w=1.4, core_idle_w=0.4,
                          node_static_w=85.0),
}


def energy_estimate(cluster_name: str, busy_by_rank, runtime: float,
                    cores_used: int, num_nodes: int = 2) -> float:
    """Energy-to-solution in joules for one run.

    Parameters
    ----------
    cluster_name:
        Key into :data:`POWER_MODELS` (``ClusterModel.name``).
    busy_by_rank:
        Per-rank useful/busy seconds (idle = allocated - busy).
    runtime:
        Wall-clock (simulated) duration of the run.
    cores_used / num_nodes:
        Allocation size.
    """
    try:
        power = POWER_MODELS[cluster_name]
    except KeyError:
        raise KeyError(f"no power model for {cluster_name!r}; available: "
                       f"{sorted(POWER_MODELS)}") from None
    busy = float(np.sum(np.asarray(busy_by_rank, dtype=np.float64)))
    if runtime < 0:
        raise ValueError("runtime must be non-negative")
    allocated = runtime * cores_used
    busy = min(busy, allocated)
    idle = allocated - busy
    return (busy * power.core_active_w
            + idle * power.core_idle_w
            + runtime * num_nodes * power.node_static_w)
