"""Calibrated models of the paper's two evaluation platforms.

* **MareNostrum4** (Intel): 2x Intel Xeon Platinum 8160, 24 cores/socket at
  2.1 GHz, out-of-order; Intel Omni-Path interconnect.
* **Thunder** (Arm): 2x Cavium ThunderX CN8890, 48 custom Armv8 cores/socket
  at 1.8 GHz, in-order; single 40 GbE link.

Calibration targets (Section 4.3 of the paper):

===============================  =========  =========
quantity                          MN4        Thunder
===============================  =========  =========
assembly IPC, MPI-only            ~2.25      ~0.49
assembly IPC with atomics         ~1.15      ~0.42
relative IPC drop                 50 %       14 %
multidep IPC vs MPI-only          94-96 %    94-96 %
===============================  =========  =========

With the additive CPI model of :mod:`repro.machine.arch` and an assembly
kernel whose atomic fraction is ~1.36 % of instructions (the nn^2+nn nodal
scatter updates of the reference element mix, see :mod:`repro.app.costs`):

* MN4:    CPI 0.444 + 0.0136*31  = 0.87  -> IPC 1.15  (drop 49 %)  [target 1.15]
* Thunder: CPI 2.041 + 0.0136*25 = 2.38  -> IPC 0.42  (drop 14 %)  [target 0.42]

The interconnect numbers are nominal values for Omni-Path (100 Gb/s, ~1.5 us)
and 40 GbE (~10 us); intra-node shared-memory transfers are the same on both.
"""

from __future__ import annotations

from .arch import CoreModel
from .cluster import ClusterModel, InterconnectModel, NodeModel

__all__ = ["marenostrum4", "thunder", "PRESETS", "get_cluster"]

#: Shared-memory "link" used for intra-node rank-to-rank messages.
_SHMEM = InterconnectModel(name="shmem", latency_us=0.5, bandwidth_gbs=20.0)


def marenostrum4(num_nodes: int = 2) -> ClusterModel:
    """MareNostrum4 general-purpose partition (Intel Xeon Platinum 8160)."""
    core = CoreModel(
        name="xeon-8160",
        freq_ghz=2.1,
        base_ipc=2.25,
        out_of_order=True,
        atomic_stall_cycles=31.0,
        mem_stall_cycles=12.0,
        miss_hiding=0.35,  # OoO overlaps most of the miss latency
    )
    node = NodeModel(name="sd530", sockets=2, cores_per_socket=24, core=core,
                     mem_bw_gbs=230.0)
    omnipath = InterconnectModel(name="omni-path", latency_us=1.5,
                                 bandwidth_gbs=12.5)
    return ClusterModel(name="MareNostrum4", node=node, interconnect=omnipath,
                        intranode=_SHMEM, num_nodes=num_nodes)


def thunder(num_nodes: int = 2) -> ClusterModel:
    """Thunder cluster (Cavium ThunderX CN8890, Mont-Blanc project)."""
    core = CoreModel(
        name="thunderx-cn8890",
        freq_ghz=1.8,
        base_ipc=0.49,
        out_of_order=False,
        atomic_stall_cycles=25.0,
        mem_stall_cycles=20.0,
        miss_hiding=1.0,  # in-order: the full miss latency is exposed
    )
    node = NodeModel(name="thunderx-2u", sockets=2, cores_per_socket=48,
                     core=core, mem_bw_gbs=102.4)
    ge40 = InterconnectModel(name="40gbe", latency_us=10.0, bandwidth_gbs=5.0)
    return ClusterModel(name="Thunder", node=node, interconnect=ge40,
                        intranode=_SHMEM, num_nodes=num_nodes)


PRESETS = {
    "marenostrum4": marenostrum4,
    "mn4": marenostrum4,
    "thunder": thunder,
}


def get_cluster(name: str, num_nodes: int = 2) -> ClusterModel:
    """Look up a preset cluster by name (``marenostrum4``/``mn4``/``thunder``)."""
    try:
        factory = PRESETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown cluster {name!r}; available: {sorted(PRESETS)}") from None
    return factory(num_nodes=num_nodes)
