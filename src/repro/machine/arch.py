"""Analytic processor-core performance models.

The paper's central architectural observation is that the *same* source-level
change (replacing ``omp atomic`` with multidependences) pays off very
differently on an out-of-order Intel Xeon (assembly IPC 2.25 -> 1.15 with
atomics, a 50 % drop) than on an in-order Cavium ThunderX (0.49 -> 0.42, a
14 % drop).  We capture this with a classic additive CPI model:

    CPI_eff = 1/IPC_base + f_atomic * C_atomic + f_miss * C_mem * H

where ``f_atomic`` is the fraction of instructions that are atomic
read-modify-writes, ``C_atomic`` the per-atomic pipeline stall,
``f_miss`` the fraction of *additional* cache-missing accesses caused by a
locality-destroying traversal (the coloring strategy), ``C_mem`` the memory
stall, and ``H`` a hiding factor (<1 for out-of-order cores, which overlap
misses with independent work; 1 for in-order cores).

Because the baseline CPI of an aggressive out-of-order core is small, the
*same absolute stall* is a much larger *relative* slowdown on Intel than on
the in-order Arm — which is exactly the effect measured in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CoreModel", "WorkSpec"]


@dataclass(frozen=True)
class WorkSpec:
    """A quantum of computational work handed to a core.

    Attributes
    ----------
    instructions:
        Dynamic instruction count of the work (from the numeric layer's
        meters, e.g. elements assembled x instructions/element).
    atomic_frac:
        Fraction of instructions that are atomic read-modify-write updates
        (``omp atomic`` scatter updates in the assembly).
    extra_miss_frac:
        Fraction of instructions that incur an *additional* cache miss due to
        a locality-destroying traversal order (coloring).
    ipc_factor:
        Multiplicative derating of the final IPC (task-runtime bookkeeping
        interleaved with the work; the paper reports multidependences at
        94-96 % of the MPI-only IPC).
    """

    instructions: float
    atomic_frac: float = 0.0
    extra_miss_frac: float = 0.0
    ipc_factor: float = 1.0

    def __post_init__(self):
        if self.instructions < 0:
            raise ValueError(f"negative instructions: {self.instructions}")
        if not 0.0 <= self.atomic_frac <= 1.0:
            raise ValueError(f"atomic_frac out of [0,1]: {self.atomic_frac}")
        if not 0.0 <= self.extra_miss_frac <= 1.0:
            raise ValueError(
                f"extra_miss_frac out of [0,1]: {self.extra_miss_frac}")
        if self.ipc_factor <= 0.0:
            raise ValueError(f"ipc_factor must be > 0: {self.ipc_factor}")

    def scaled(self, factor: float) -> "WorkSpec":
        """A copy of this spec with ``instructions`` scaled by ``factor``."""
        return WorkSpec(self.instructions * factor, self.atomic_frac,
                        self.extra_miss_frac, self.ipc_factor)


@dataclass(frozen=True)
class CoreModel:
    """Performance model of one processor core.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"xeon-8160"``).
    freq_ghz:
        Clock frequency in GHz (cycles per nanosecond).
    base_ipc:
        Sustained instructions/cycle of the phase kernels without atomics or
        locality damage (the paper's MPI-only assembly IPC).
    out_of_order:
        Whether the core overlaps memory stalls with independent work.
    atomic_stall_cycles:
        Extra pipeline cycles per atomic read-modify-write.
    mem_stall_cycles:
        Extra cycles per additional cache miss.
    miss_hiding:
        Fraction of the memory stall actually *exposed* (out-of-order cores
        expose only part of it; in-order cores expose all of it).
    """

    name: str
    freq_ghz: float
    base_ipc: float
    out_of_order: bool
    atomic_stall_cycles: float
    mem_stall_cycles: float
    miss_hiding: float = field(default=1.0)

    def __post_init__(self):
        if self.freq_ghz <= 0:
            raise ValueError(f"freq_ghz must be > 0: {self.freq_ghz}")
        if self.base_ipc <= 0:
            raise ValueError(f"base_ipc must be > 0: {self.base_ipc}")
        if not 0.0 < self.miss_hiding <= 1.0:
            raise ValueError(f"miss_hiding out of (0,1]: {self.miss_hiding}")

    # -- IPC model ---------------------------------------------------------
    def effective_ipc(self, spec: WorkSpec) -> float:
        """Instructions/cycle the core sustains on ``spec``'s instruction mix."""
        cpi = 1.0 / self.base_ipc
        cpi += spec.atomic_frac * self.atomic_stall_cycles
        cpi += spec.extra_miss_frac * self.mem_stall_cycles * self.miss_hiding
        return spec.ipc_factor / cpi

    def seconds(self, spec: WorkSpec) -> float:
        """Wall-clock seconds for one core to retire ``spec``."""
        if spec.instructions == 0:
            return 0.0
        ipc = self.effective_ipc(spec)
        cycles = spec.instructions / ipc
        return cycles / (self.freq_ghz * 1e9)

    def instructions_in(self, seconds: float, spec: WorkSpec) -> float:
        """Inverse of :meth:`seconds`: instructions retired in ``seconds``."""
        return seconds * self.freq_ghz * 1e9 * self.effective_ipc(spec)
