"""Node, interconnect and cluster topology models.

A :class:`ClusterModel` answers two questions for the runtime layers:

* how long does a message of N bytes take between two ranks (same node via
  shared memory, or across the interconnect)?
* which node does a given MPI rank live on, for a given process-to-node
  mapping (``block`` or ``cyclic``)?  Node placement determines which ranks
  can share cores under DLB, which only operates inside a node.
"""

from __future__ import annotations

from dataclasses import dataclass

from .arch import CoreModel

__all__ = ["NodeModel", "InterconnectModel", "ClusterModel", "rank_to_node"]


@dataclass(frozen=True)
class NodeModel:
    """A shared-memory node: ``sockets`` x ``cores_per_socket`` cores."""

    name: str
    sockets: int
    cores_per_socket: int
    core: CoreModel
    mem_bw_gbs: float

    def __post_init__(self):
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("node must have at least one core")

    @property
    def cores(self) -> int:
        """Total cores in the node."""
        return self.sockets * self.cores_per_socket


@dataclass(frozen=True)
class InterconnectModel:
    """Latency/bandwidth model of a network link."""

    name: str
    latency_us: float
    bandwidth_gbs: float

    def transfer_seconds(self, nbytes: float) -> float:
        """Time for ``nbytes`` to cross the link (latency + serialization)."""
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        return self.latency_us * 1e-6 + nbytes / (self.bandwidth_gbs * 1e9)


@dataclass(frozen=True)
class ClusterModel:
    """A homogeneous cluster of ``num_nodes`` nodes.

    ``intranode`` models shared-memory transfers between ranks on the same
    node; ``interconnect`` models the network between nodes.
    """

    name: str
    node: NodeModel
    interconnect: InterconnectModel
    intranode: InterconnectModel
    num_nodes: int = 2

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError("cluster needs at least one node")

    @property
    def total_cores(self) -> int:
        """Cores across the whole cluster."""
        return self.node.cores * self.num_nodes

    def message_seconds(self, node_a: int, node_b: int, nbytes: float) -> float:
        """Transfer time between ranks placed on ``node_a`` and ``node_b``."""
        link = self.intranode if node_a == node_b else self.interconnect
        return link.transfer_seconds(nbytes)


def rank_to_node(rank: int, nranks: int, num_nodes: int,
                 mapping: str = "block") -> int:
    """Map MPI ``rank`` to a node index.

    ``block`` fills node 0 with the first ``nranks/num_nodes`` ranks, then
    node 1, ... (the common scheduler default).  ``cyclic`` deals ranks
    round-robin across nodes, which interleaves the fluid and particle codes
    of a coupled run so that DLB can lend cores between them.
    """
    if not 0 <= rank < nranks:
        raise ValueError(f"rank {rank} out of range [0, {nranks})")
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if mapping == "block":
        per_node = -(-nranks // num_nodes)  # ceil division
        return rank // per_node
    if mapping == "cyclic":
        return rank % num_nodes
    raise ValueError(f"unknown mapping {mapping!r} (use 'block' or 'cyclic')")
