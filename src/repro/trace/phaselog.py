"""Phase-level execution records and the paper's load-balance metric.

The paper quantifies load imbalance per phase with (Eq. 9):

    L_n = sum_i t_i / (n * max_i t_i)

where ``t_i`` is the *active* (busy) time of process ``i`` in the phase.
L_n = 1 is perfectly balanced; L_n = 0.02 (the particles phase of Table 1)
means 98 % of the allocated resources are wasted.
"""

from __future__ import annotations

from collections import defaultdict
from typing import NamedTuple, Optional, Sequence

import numpy as np

__all__ = ["PhaseSample", "PhaseLog", "load_balance"]


def load_balance(busy_times: Sequence[float]) -> float:
    """The paper's L_n metric over per-process busy times (Eq. 9)."""
    t = np.asarray(busy_times, dtype=np.float64)
    if len(t) == 0:
        return 1.0
    peak = t.max()
    if peak <= 0:
        return 1.0
    return float(t.sum() / (len(t) * peak))


class PhaseSample(NamedTuple):
    """One rank's execution of one phase instance (one step).

    A named tuple rather than a frozen dataclass: every phase of every rank
    of every step appends one (5 x nranks x n_steps per run), and tuple
    construction skips the per-field ``object.__setattr__`` a frozen
    dataclass pays.
    """

    step: int
    phase: str
    rank: int
    t0: float
    t1: float
    busy: float            # seconds of actual task execution
    instructions: float

    @property
    def elapsed(self) -> float:
        """Wall-clock span of the sample."""
        return self.t1 - self.t0


class PhaseLog:
    """Accumulates :class:`PhaseSample` records and derives Table-1 metrics."""

    def __init__(self, nranks: int):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        self.samples: list[PhaseSample] = []

    def add(self, step: int, phase: str, rank: int, t0: float, t1: float,
            busy: float, instructions: float = 0.0) -> None:
        """Record one phase execution on one rank."""
        if t1 < t0:
            raise ValueError(f"t1 < t0 ({t1} < {t0})")
        self.samples.append(PhaseSample(step, phase, rank, t0, t1, busy,
                                        instructions))

    # -- queries -----------------------------------------------------------
    def phases(self) -> list[str]:
        """Distinct phase names in first-appearance order."""
        seen: dict[str, None] = {}
        for s in self.samples:
            seen.setdefault(s.phase, None)
        return list(seen)

    def busy_by_rank(self, phase: str) -> np.ndarray:
        """Total busy seconds per rank in ``phase`` (all steps)."""
        out = np.zeros(self.nranks)
        for s in self.samples:
            if s.phase == phase:
                out[s.rank] += s.busy
        return out

    def load_balance(self, phase: str,
                     ranks: Optional[Sequence[int]] = None) -> float:
        """L_n of ``phase`` over the participating ranks.

        ``ranks`` restricts the metric to a subset (e.g. only the ranks that
        executed the phase in a coupled run); default: ranks with any sample
        in this phase.
        """
        busy = self.busy_by_rank(phase)
        if ranks is None:
            participating = sorted({s.rank for s in self.samples
                                    if s.phase == phase})
        else:
            participating = list(ranks)
        if not participating:
            return 1.0
        return load_balance(busy[participating])

    def load_balance_by_step(self, phase: str) -> list[float]:
        """L_n of ``phase`` per time step — e.g. how the particles-phase
        imbalance relaxes as the aerosol spreads through the airway."""
        by_step: dict[int, dict[int, float]] = defaultdict(dict)
        for s in self.samples:
            if s.phase == phase:
                by_step[s.step][s.rank] = \
                    by_step[s.step].get(s.rank, 0.0) + s.busy
        return [load_balance(list(by_step[step].values()))
                for step in sorted(by_step)]

    def elapsed(self, phase: str) -> float:
        """Wall-clock time attributable to ``phase``: the sum over steps of
        the span from the first rank entering to the last rank leaving."""
        by_step: dict[int, list[PhaseSample]] = defaultdict(list)
        for s in self.samples:
            if s.phase == phase:
                by_step[s.step].append(s)
        total = 0.0
        for samples in by_step.values():
            total += (max(s.t1 for s in samples)
                      - min(s.t0 for s in samples))
        return total

    def total_elapsed(self) -> float:
        """Span from the first sample start to the last sample end."""
        if not self.samples:
            return 0.0
        return (max(s.t1 for s in self.samples)
                - min(s.t0 for s in self.samples))

    def percent_time(self, phase: str) -> float:
        """Share of total elapsed time spent in ``phase`` (Table 1 col. 2)."""
        total = self.total_elapsed()
        if total <= 0:
            return 0.0
        return 100.0 * self.elapsed(phase) / total

    def instructions(self, phase: str) -> float:
        """Total instructions retired in ``phase``."""
        return sum(s.instructions for s in self.samples if s.phase == phase)

    def ipc(self, phase: str, freq_ghz: float) -> float:
        """Achieved IPC of the phase (busy-time weighted, as a hardware
        counter would report)."""
        busy = sum(s.busy for s in self.samples if s.phase == phase)
        if busy <= 0:
            return 0.0
        return self.instructions(phase) / (busy * freq_ghz * 1e9)

    def summary(self) -> list[dict]:
        """Table-1-style rows: phase, L_n, %time (first-appearance order)."""
        return [{"phase": p,
                 "load_balance": self.load_balance(p),
                 "percent_time": self.percent_time(p)}
                for p in self.phases()]

    def step_samples(self, step: int) -> list[PhaseSample]:
        """All samples of one step (for timeline rendering)."""
        return [s for s in self.samples if s.step == step]
