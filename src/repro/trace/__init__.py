"""Tracing and performance analysis (the Extrae/Paraver substitute).

* :class:`PhaseLog` — per-(step, phase, rank) execution records with the
  paper's load-balance metric L_n, phase time percentages, and IPC.
* :class:`Tracer` — raw interval recorder pluggable into the simulated MPI
  world (``world.recorder``).
* :func:`render_timeline` — ASCII Paraver-style timeline (Fig. 2).
"""

from .export import read_csv, write_csv, write_prv
from .phaselog import PhaseLog, PhaseSample, load_balance
from .pop import POPMetrics, pop_from_phase_log, pop_metrics
from .tracer import Interval, Tracer
from .timeline import render_timeline, timeline_rows

__all__ = [
    "Interval",
    "PhaseLog",
    "PhaseSample",
    "Tracer",
    "POPMetrics",
    "load_balance",
    "pop_from_phase_log",
    "pop_metrics",
    "read_csv",
    "render_timeline",
    "timeline_rows",
    "write_csv",
    "write_prv",
]
