"""Raw interval tracer — the Extrae substitute.

Plugs into the simulated MPI world (``world.recorder = tracer``) and
receives every blocking-MPI and task-execution interval.  Useful for
drill-down analysis and for the Fig. 2 timeline at sub-phase resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Interval", "Tracer"]


@dataclass(frozen=True)
class Interval:
    """One traced interval on one rank."""

    rank: int
    category: str   # "mpi" | "task" | "compute" | custom
    name: str
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        """Interval length in simulated seconds."""
        return self.t1 - self.t0


class Tracer:
    """Accumulates :class:`Interval` records (the ``recorder`` protocol)."""

    def __init__(self) -> None:
        self.intervals: list[Interval] = []

    def record(self, rank: int, category: str, name: str, t0: float,
               t1: float) -> None:
        """Record one interval (called by the smpi world and the teams)."""
        self.intervals.append(Interval(rank, category, name, t0, t1))

    def __len__(self) -> int:
        return len(self.intervals)

    def by_rank(self, rank: int) -> list[Interval]:
        """All intervals of ``rank`` in record order."""
        return [iv for iv in self.intervals if iv.rank == rank]

    def by_category(self, category: str) -> list[Interval]:
        """All intervals of one category."""
        return [iv for iv in self.intervals if iv.category == category]

    def total_time(self, rank: int, category: Optional[str] = None) -> float:
        """Summed duration on ``rank`` (optionally one category only)."""
        return sum(iv.duration for iv in self.intervals
                   if iv.rank == rank
                   and (category is None or iv.category == category))
