"""Paraver-style timeline rendering (the paper's Fig. 2).

Renders a :class:`~repro.trace.phaselog.PhaseLog` step as an ASCII timeline:
one row per MPI rank (or rank group), one column per time bucket, each cell
showing the phase that dominated the bucket.  The original figure shows the
same thing in colors: assembly (brown), solvers (pink/blue), SGS (purple),
particles (black), MPI (white).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .phaselog import PhaseLog, PhaseSample

__all__ = ["render_timeline", "timeline_rows", "DEFAULT_GLYPHS"]

#: Default one-character glyph per phase (in Fig. 2's palette order).
DEFAULT_GLYPHS = {
    "assembly": "#",
    "solver1": "+",
    "solver2": "-",
    "sgs": "%",
    "particles": "@",
    "exchange": ".",
    "migration": ".",
}


def timeline_rows(log: PhaseLog, step: int) -> list[tuple[int, str, float,
                                                          float]]:
    """Flat (rank, phase, t0, t1) rows of one step, sorted by rank then t0.

    This is the machine-readable export (CSV-ready) of the Fig. 2 data.
    """
    rows = [(s.rank, s.phase, s.t0, s.t1) for s in log.step_samples(step)]
    rows.sort(key=lambda r: (r[0], r[2]))
    return rows


def render_timeline(log: PhaseLog, step: int, width: int = 100,
                    max_ranks: int = 24,
                    glyphs: Optional[dict] = None) -> str:
    """ASCII timeline of one step: ranks down, time across.

    Ranks beyond ``max_ranks`` are subsampled evenly (Fig. 2 shows all 96,
    a terminal cannot).  Idle/MPI time renders as spaces.
    """
    glyphs = {**DEFAULT_GLYPHS, **(glyphs or {})}
    samples = log.step_samples(step)
    if not samples:
        return "(no samples for step %d)" % step
    t_min = min(s.t0 for s in samples)
    t_max = max(s.t1 for s in samples)
    span = max(t_max - t_min, 1e-30)
    ranks = sorted({s.rank for s in samples})
    if len(ranks) > max_ranks:
        sel = np.linspace(0, len(ranks) - 1, max_ranks).astype(int)
        ranks = [ranks[i] for i in sel]
    by_rank: dict[int, list[PhaseSample]] = {r: [] for r in ranks}
    for s in samples:
        if s.rank in by_rank:
            by_rank[s.rank].append(s)
    lines = []
    header = (f"step {step}: t = [{t_min * 1e3:.3f}, {t_max * 1e3:.3f}] ms, "
              f"{len(ranks)} of {log.nranks} ranks shown")
    lines.append(header)
    legend = "  ".join(f"{g}={p}" for p, g in glyphs.items()
                       if any(s.phase == p for s in samples))
    lines.append("legend: " + legend + "  (space = MPI/idle)")
    for r in ranks:
        row = [" "] * width
        for s in sorted(by_rank[r], key=lambda s: s.t0):
            c0 = int((s.t0 - t_min) / span * width)
            c1 = int(np.ceil((s.t1 - t_min) / span * width))
            c1 = max(c1, c0 + 1)
            g = glyphs.get(s.phase, "?")
            for c in range(c0, min(c1, width)):
                row[c] = g
        lines.append(f"rank {r:4d} |{''.join(row)}|")
    return "\n".join(lines)
