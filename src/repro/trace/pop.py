"""POP efficiency metrics (BSC's Performance Optimisation methodology).

The authors' group popularized a standard hierarchy of multiplicative
efficiencies for MPI applications (the POP CoE model), computed from the
same traces Extrae records:

* **load balance**         LB   = avg_i(useful_i) / max_i(useful_i)
* **communication eff.**   CommE = max_i(useful_i) / runtime
* **parallel efficiency**  PE   = LB x CommE = avg_i(useful_i) / runtime

``useful_i`` is rank *i*'s time spent in actual computation (busy time);
everything else (MPI waits, transfer, runtime overhead) erodes CommE.
DLB attacks the LB factor; multidependences attack the serialization part
of CommE inside a rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .phaselog import PhaseLog

__all__ = ["POPMetrics", "pop_metrics", "pop_from_phase_log"]


@dataclass(frozen=True)
class POPMetrics:
    """The three top-level POP efficiencies (each in (0, 1])."""

    load_balance: float
    communication_efficiency: float

    @property
    def parallel_efficiency(self) -> float:
        """LB x CommE (= avg useful / runtime)."""
        return self.load_balance * self.communication_efficiency

    def format(self) -> str:
        """Human-readable summary."""
        return (f"POP efficiencies: LB={self.load_balance:.2f} x "
                f"CommE={self.communication_efficiency:.2f} = "
                f"PE={self.parallel_efficiency:.2f}")


def pop_metrics(useful_by_rank: Sequence[float], runtime: float
                ) -> POPMetrics:
    """Compute the POP efficiencies from per-rank useful times."""
    useful = np.asarray(useful_by_rank, dtype=np.float64)
    if len(useful) == 0:
        raise ValueError("need at least one rank")
    if runtime <= 0:
        raise ValueError(f"runtime must be positive, got {runtime}")
    peak = useful.max()
    if peak <= 0:
        return POPMetrics(load_balance=1.0, communication_efficiency=0.0)
    lb = float(useful.mean() / peak)
    comme = float(min(1.0, peak / runtime))
    return POPMetrics(load_balance=lb, communication_efficiency=comme)


def pop_from_phase_log(log: PhaseLog, runtime: float,
                       ranks: Sequence[int] | None = None) -> POPMetrics:
    """POP efficiencies of a run: useful time = summed phase busy time."""
    useful = np.zeros(log.nranks)
    for s in log.samples:
        useful[s.rank] += s.busy
    if ranks is not None:
        useful = useful[list(ranks)]
    return pop_metrics(useful, runtime)
