"""Trace export: CSV and a Paraver-style ``.prv`` record format.

The paper's analysis workflow is Extrae (capture) + Paraver (visualize).
Our :class:`~repro.trace.phaselog.PhaseLog` plays the Extrae role; this
module exports its samples so external tools (or spreadsheets) can play
Paraver's:

* :func:`write_csv` / :func:`read_csv` — one row per (step, phase, rank)
  sample, lossless round trip;
* :func:`write_prv` — Paraver state-record syntax
  (``1:cpu:appl:task:thread:begin:end:state``), one application, one task
  per MPI rank, times in integer nanoseconds, with a ``.pcf``-style legend
  of phase-state ids embedded as comments.
"""

from __future__ import annotations

from typing import TextIO, Union

from .phaselog import PhaseLog

__all__ = ["write_csv", "read_csv", "write_prv", "CSV_HEADER"]

CSV_HEADER = "step,phase,rank,t0,t1,busy,instructions"


def _open(dest: Union[str, TextIO], mode: str):
    if isinstance(dest, str):
        return open(dest, mode), True
    return dest, False


def write_csv(log: PhaseLog, dest: Union[str, TextIO]) -> None:
    """Write all samples as CSV (header + one row per sample)."""
    fh, owned = _open(dest, "w")
    try:
        fh.write(CSV_HEADER + "\n")
        for s in log.samples:
            fh.write(f"{s.step},{s.phase},{s.rank},{float(s.t0)!r},"
                     f"{float(s.t1)!r},{float(s.busy)!r},"
                     f"{float(s.instructions)!r}\n")
    finally:
        if owned:
            fh.close()


def read_csv(src: Union[str, TextIO], nranks: int) -> PhaseLog:
    """Read a CSV produced by :func:`write_csv` back into a PhaseLog."""
    fh, owned = _open(src, "r")
    try:
        header = fh.readline().strip()
        if header != CSV_HEADER:
            raise ValueError(f"unexpected CSV header: {header!r}")
        log = PhaseLog(nranks)
        for line in fh:
            line = line.strip()
            if not line:
                continue
            step, phase, rank, t0, t1, busy, instr = line.split(",")
            log.add(int(step), phase, int(rank), float(t0), float(t1),
                    float(busy), float(instr))
        return log
    finally:
        if owned:
            fh.close()


def write_prv(log: PhaseLog, dest: Union[str, TextIO],
              resolution_ns: float = 1.0) -> dict:
    """Write Paraver-style state records; returns the phase -> state-id map.

    Record syntax (one per sample)::

        1:<cpu>:1:<task>:1:<begin_ns>:<end_ns>:<state>

    where ``task`` is ``rank + 1`` and ``state`` numbers the phases in
    first-appearance order starting at 1 (0 is reserved for idle, as in
    Paraver).  The header carries the total duration and rank count; the
    state legend is embedded as ``#`` comments (a minimal inline ``.pcf``).
    """
    phases = log.phases()
    state_of = {phase: i + 1 for i, phase in enumerate(phases)}
    total_ns = int(round(log.total_elapsed() * 1e9 / resolution_ns))
    fh, owned = _open(dest, "w")
    try:
        fh.write(f"#Paraver (repro):{total_ns}_ns:1({log.nranks}):1:"
                 f"1({log.nranks}:1)\n")
        for phase, state in state_of.items():
            fh.write(f"# STATE {state} {phase}\n")
        for s in sorted(log.samples, key=lambda s: (s.t0, s.rank)):
            begin = int(round(s.t0 * 1e9 / resolution_ns))
            end = int(round(s.t1 * 1e9 / resolution_ns))
            fh.write(f"1:{s.rank + 1}:1:{s.rank + 1}:1:{begin}:{end}:"
                     f"{state_of[s.phase]}\n")
    finally:
        if owned:
            fh.close()
    return state_of
