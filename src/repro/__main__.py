"""Command-line interface: regenerate paper results or run custom setups.

Usage::

    python -m repro table1                # Table 1
    python -m repro fig2                  # trace timeline (ASCII)
    python -m repro fig6 | fig7           # hybrid strategy sweeps
    python -m repro fig8 | fig9 | fig10 | fig11   # DLB figures
    python -m repro ipc                   # Sec. 4.3 IPC counters
    python -m repro run --cluster thunder --nranks 96 --dlb \\
                        --mode coupled --fluid-ranks 64
    python -m repro mesh --generations 5 --vtk airway.vtk
    python -m repro campaign run --name demo --store results/store
    python -m repro campaign status --store results/store
    python -m repro campaign resume --name demo --store results/store
    python -m repro campaign report --name demo --store results/store
    python -m repro campaign doctor --store results/store

Workload size flags (``--generations``, ``--steps``, ``--large``) apply to
every experiment and campaign subcommand (one shared parent parser).
Experiment subcommands accept ``--json`` to emit structured rows through
the same serialization path the campaign result store uses.

Exit codes: 0 success, 1 failed jobs, 2 usage, 3 campaign killed by
injection (resumable — re-run with ``campaign resume``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .app import (
    LARGE_PARTICLE_RATIO,
    SMALL_PARTICLE_RATIO,
    RunConfig,
    WorkloadSpec,
    get_workload,
    run_cfpd,
)
from .core import Strategy
from .cosim import VENTILATION_PATTERNS

#: Exit code when a campaign is aborted by ``job_kill`` injection.
EXIT_KILLED = 3


def _spec_from(args) -> WorkloadSpec:
    kwargs = _adaptive_overrides(args)
    if args.generations is not None:
        kwargs["generations"] = args.generations
    if args.steps is not None:
        kwargs["n_steps"] = args.steps
    kwargs["particle_ratio"] = (LARGE_PARTICLE_RATIO if args.large
                                else SMALL_PARTICLE_RATIO)
    return WorkloadSpec(**kwargs)


def _adaptive_overrides(args) -> dict:
    """The adaptive-Δt and breathing workload flags the user actually
    set."""
    kwargs = {}
    if getattr(args, "adaptive", None) is not None:
        kwargs["adaptive"] = args.adaptive
    if getattr(args, "cfl_target", None) is not None:
        kwargs["cfl_target"] = args.cfl_target
    if getattr(args, "waveform", None) is not None:
        kwargs["inlet_waveform"] = args.waveform
    if getattr(args, "breathing_pattern", None) is not None:
        kwargs.update(VENTILATION_PATTERNS[args.breathing_pattern])
        # a named pattern implies the ventilator-coupled waveform unless
        # the user picked one explicitly
        kwargs.setdefault("inlet_waveform", "ventilator")
    if getattr(args, "tidal_volume", None) is not None:
        kwargs["tidal_volume"] = args.tidal_volume
    if getattr(args, "cpap", None) is not None:
        kwargs["cpap"] = args.cpap
    return kwargs


def _spec_overrides(args) -> dict:
    """Only the workload fields the user actually set — campaigns keep
    their built-in defaults (e.g. fig10's large load) otherwise."""
    kwargs = _adaptive_overrides(args)
    if args.generations is not None:
        kwargs["generations"] = args.generations
    if args.steps is not None:
        kwargs["n_steps"] = args.steps
    if args.large:
        kwargs["particle_ratio"] = LARGE_PARTICLE_RATIO
    return kwargs


def _workload_parent() -> argparse.ArgumentParser:
    """Shared workload flags (argparse parent): size, particle load and
    adaptive time stepping."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--generations", type=int, default=None,
                   help="airway tree depth (default 5; paper 7)")
    p.add_argument("--steps", type=int, default=None,
                   help="time steps to simulate (default 10)")
    p.add_argument("--large", action="store_true",
                   help="use the 7e6-scaled particle load (default 4e5)")
    p.add_argument("--adaptive", default=None,
                   choices=["off", "global", "local"],
                   help="CFL-driven adaptive time stepping (default off)")
    p.add_argument("--cfl-target", type=float, default=None,
                   help="target CFL number of the adaptive controller "
                        "(default 0.9)")
    p.add_argument("--waveform", default=None,
                   choices=["steady", "ramp", "sine", "breathing",
                            "ventilator"],
                   help="transient inlet waveform (default steady; "
                        "'breathing' is the analytic cycle, 'ventilator' "
                        "couples the 0D lung model through the cosim hub)")
    p.add_argument("--breathing-pattern", default=None,
                   choices=sorted(VENTILATION_PATTERNS),
                   help="named ventilation preset (implies --waveform "
                        "ventilator unless one is given)")
    p.add_argument("--tidal-volume", type=float, default=None,
                   help="tidal volume in ml (default 350)")
    p.add_argument("--cpap", type=float, default=None,
                   help="CPAP support pressure in cmH2O (default 0)")
    return p


def _print_json(obj) -> None:
    """One serialization path with the result store (campaign.serialize)."""
    from .campaign.serialize import plain

    print(json.dumps(plain(obj), indent=2, sort_keys=True))


def _cmd_experiment(name: str, args) -> int:
    from . import experiments as exp

    spec = _spec_from(args)
    if name == "adaptive":
        # transient defaults: a steady 10-step run has nothing for the
        # controller to do — unless the user asked for exactly that
        import dataclasses

        if args.waveform is None:
            spec = dataclasses.replace(spec, inlet_waveform="sine")
        if args.steps is None:
            spec = dataclasses.replace(spec, n_steps=32)
    if name == "breathing":
        # ventilator-coupled defaults: the deposition sweep needs the hub
        # waveform, a horizon long enough to deposit under breathing-scaled
        # carrier flow, and the CFL ladder consuming the transient
        import dataclasses

        from .app import BREATHING_WAVEFORMS

        overrides: dict = {}
        if args.waveform is None and args.breathing_pattern is None:
            overrides["inlet_waveform"] = "ventilator"
        if args.steps is None:
            overrides.update(n_steps=4096, injection_interval=1024)
        if args.adaptive is None:
            overrides["adaptive"] = "global"
        waveform = overrides.get("inlet_waveform", spec.inlet_waveform)
        if waveform in BREATHING_WAVEFORMS:
            overrides["injection_phase"] = "inhale"
        spec = dataclasses.replace(spec, **overrides)
    runner = {
        "table1": lambda: exp.run_table1(spec=spec),
        "fig6": lambda: exp.run_fig6(spec=spec),
        "fig7": lambda: exp.run_fig7(spec=spec),
        "fig8": lambda: exp.run_fig8(spec=spec),
        "fig9": lambda: exp.run_fig9(spec=spec),
        "fig10": lambda: exp.run_fig10(spec=spec),
        "fig11": lambda: exp.run_fig11(spec=spec),
        "ipc": lambda: exp.run_ipc_counters(spec=spec),
        "adaptive": lambda: exp.run_adaptive_dlb(spec=spec),
        "breathing": lambda: exp.run_breathing(spec=spec),
    }[name]
    result = runner()
    if args.json:
        _print_json(result.to_rows())
    else:
        print(result.format())
    return 0


def _cmd_fig2(args) -> int:
    from .experiments import run_fig2

    result = run_fig2(spec=_spec_from(args), step=args.step)
    if args.json:
        _print_json(result.to_rows())
    else:
        print(result.render(width=args.width))
    return 0


def _cmd_run(args) -> int:
    spec = _spec_from(args)
    config = RunConfig(
        cluster=args.cluster,
        nranks=args.nranks,
        threads_per_rank=args.threads,
        mode=args.mode,
        fluid_ranks=args.fluid_ranks,
        assembly_strategy=Strategy(args.assembly),
        sgs_strategy=Strategy(args.sgs),
        dlb=args.dlb)
    if args.json:
        # the campaign execution path: same record, same serialization
        from .campaign import Job, run_job

        record = run_job(Job(index=0, campaign="cli-run", config=config,
                             spec=spec))
        _print_json(record)
        return 0
    workload = get_workload(spec)
    result = run_cfpd(config, workload=workload)
    print(f"workload: {workload.mesh}, {workload.total_injected} particles")
    print(f"config:   {config.label()} on {args.cluster}, "
          f"{args.nranks}x{args.threads}")
    n_sim = result.adaptive_diag.get("n_sim_steps", spec.n_steps)
    if spec.adaptive != "off":
        print(f"total simulated time: {result.total_time * 1e3:.3f} ms "
              f"({n_sim} steps, {spec.adaptive} adaptive, "
              f"{spec.n_steps} fixed)")
    else:
        print(f"total simulated time: {result.total_time * 1e3:.3f} ms "
              f"({spec.n_steps} steps)")
    for row in result.phase_summary():
        print(f"  {row['phase']:10s} L={row['load_balance']:.2f} "
              f"{row['percent_time']:5.1f}%")
    if args.dlb:
        s = result.dlb_stats
        print(f"DLB: {s.lend_events} lends, {s.cores_borrowed_total} cores "
              f"borrowed, peak team {s.max_team_capacity}")
    return 0


def _cmd_mesh(args) -> int:
    from .mesh import AirwayConfig, MeshResolution, build_airway_mesh, write_vtk

    airway = build_airway_mesh(
        AirwayConfig(generations=args.generations
                     if args.generations is not None else 5),
        MeshResolution())
    print(airway.mesh)
    print(f"{len(airway.segments)} segments, "
          f"{len(airway.junction_pairs)} junctions")
    if args.vtk:
        write_vtk(airway.mesh, args.vtk)
        print(f"wrote {args.vtk}")
    return 0


# -- campaign subcommands ---------------------------------------------------

def _load_campaign(args):
    from .campaign import CampaignSpec, get_campaign

    if args.spec_file:
        campaign = CampaignSpec.from_file(args.spec_file)
    elif args.name:
        try:
            campaign = get_campaign(args.name)
        except KeyError as exc:
            raise SystemExit(f"campaign: {exc.args[0]}") from None
    else:
        raise SystemExit("campaign: one of --name or --spec-file is "
                         "required")
    overrides = _spec_overrides(args)
    if overrides:
        campaign = campaign.with_spec_overrides(**overrides)
    return campaign


def _chaos_plan(args):
    """Orchestration fault plan from the CLI chaos flags (``--kill-after``
    plus per-worker ``--kill-worker-at`` / ``--wedge-worker-at`` /
    ``--silence-worker-at`` lease-grant triggers)."""
    from .fault import FaultPlan, FaultSpec

    specs = []
    if args.kill_after is not None:
        specs.append(FaultSpec(kind="job_kill", time=0.0,
                               count=args.kill_after))
    for kind, grants in (("worker_kill", args.kill_worker_at),
                         ("worker_wedge", args.wedge_worker_at),
                         ("heartbeat_loss", args.silence_worker_at)):
        for grant in grants or ():
            specs.append(FaultSpec(kind=kind, time=0.0, count=grant))
    if not specs:
        return None
    return FaultPlan(specs=tuple(specs))


def _cmd_campaign_run(args) -> int:
    from .campaign import ResultStore, SupervisorConfig, run_campaign
    from .smpi import JobKilledError

    campaign = _load_campaign(args)
    store = ResultStore(args.store) if args.store else None
    supervision = SupervisorConfig()
    if args.poison_attempts is not None:
        import dataclasses

        supervision = dataclasses.replace(
            supervision, poison_attempts=args.poison_attempts)
    progress = None if args.json else print
    try:
        run = run_campaign(campaign, store=store, workers=args.workers,
                           job_timeout=args.timeout,
                           max_retries=args.retries,
                           kill_plan=_chaos_plan(args),
                           supervision=supervision,
                           progress=progress)
    except JobKilledError as exc:
        print(f"campaign {campaign.name!r} killed: {exc.reason} "
              f"(resume with: campaign resume)", file=sys.stderr)
        return EXIT_KILLED
    payload = {"campaign": run.campaign,
               "campaign_fingerprint": run.campaign_fingerprint,
               "stats": run.stats(), "digests": run.digest_map()}
    if args.json:
        _print_json(payload)
    else:
        s = run.stats()
        print(f"campaign {run.campaign!r} "
              f"({run.campaign_fingerprint[:12]}): "
              f"{s['jobs']} jobs, {s['executed']} executed, "
              f"{s['cached']} cached, {s['failed']} failed, "
              f"{s['quarantined']} quarantined")
    return 0 if run.ok else 1


def _cmd_campaign_status(args) -> int:
    from .campaign import ResultStore, replay

    state = replay(os.path.join(args.store, "journal.jsonl"))
    summary = state.summary()
    summary["store"] = ResultStore(args.store).stats()
    if args.json:
        _print_json(summary)
        return 0
    if not state.began:
        print(f"no campaign journal under {args.store!r}")
        return 0
    print(f"campaign {state.campaign!r} "
          f"({(state.campaign_fingerprint or '?')[:12]}):")
    print(f"  {state.completed}/{state.njobs} cells complete "
          f"({len(state.done)} executed, {len(state.cached)} cached), "
          f"{len(state.failed)} failed, {state.retries} retries")
    if state.killed:
        print(f"  KILLED: {state.kill_reason} — resumable")
    elif state.finished:
        print("  finished")
    else:
        print("  in progress (or interrupted — resumable)")
    if state.truncated:
        print("  journal has a torn trailing line (crash mid-append)")
    print(f"  store: {summary['store']['objects']} objects, "
          f"{summary['store']['bytes']} bytes")
    return 0


def _cmd_campaign_report(args) -> int:
    from .campaign import ResultStore, build_report, replay

    campaign = _load_campaign(args)
    state = replay(os.path.join(args.store, "journal.jsonl"))
    report = build_report(campaign, ResultStore(args.store),
                          journal_state=state)
    if args.json:
        _print_json({"name": report.name,
                     "campaign_fingerprint": report.campaign_fingerprint,
                     "rows": report.to_rows(), "summary": report.summary,
                     "pending": report.pending,
                     "degraded": report.degraded})
    else:
        print(report.format())
    return 0


def _cmd_campaign_doctor(args) -> int:
    from .campaign import diagnose

    report = diagnose(args.store)
    if args.json:
        _print_json(report.summary())
    else:
        print(report.format())
    return 0 if report.ok else 1


def _add_campaign_parser(sub, workload_parent) -> None:
    p = sub.add_parser("campaign",
                       help="declarative scenario sweeps (run/status/"
                            "resume/report)")
    csub = p.add_subparsers(dest="campaign_command", required=True)

    select = argparse.ArgumentParser(add_help=False)
    select.add_argument("--name", default=None,
                        help="built-in campaign name (demo, ci-smoke, "
                             "fig6..fig11)")
    select.add_argument("--spec-file", default=None, metavar="FILE",
                        help="campaign spec JSON (CampaignSpec.to_file)")

    for verb, help_ in (("run", "execute a campaign (memoized)"),
                        ("resume", "re-run after a crash/kill: cached "
                                   "cells skip, pending cells execute")):
        cp = csub.add_parser(verb, parents=[workload_parent, select],
                             help=help_)
        cp.add_argument("--store", default=None, metavar="DIR",
                        required=(verb == "resume"),
                        help="content-addressed result store directory")
        cp.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = serial inline)")
        cp.add_argument("--timeout", type=float, default=None,
                        help="per-job timeout [s]")
        cp.add_argument("--retries", type=int, default=2,
                        help="max retries for transient failures")
        cp.add_argument("--kill-after", type=int, default=None,
                        metavar="N",
                        help="inject a campaign-level job_kill after N "
                             "completed jobs (crash-safety drills)")
        cp.add_argument("--kill-worker-at", type=int, action="append",
                        default=None, metavar="G",
                        help="SIGKILL the worker granted lease G (1-based "
                             "grant counter; repeatable; needs --workers)")
        cp.add_argument("--wedge-worker-at", type=int, action="append",
                        default=None, metavar="G",
                        help="wedge the worker granted lease G (heartbeats "
                             "forever, never finishes; repeatable)")
        cp.add_argument("--silence-worker-at", type=int, action="append",
                        default=None, metavar="G",
                        help="silence the worker granted lease G (no "
                             "heartbeats, no result; repeatable)")
        cp.add_argument("--poison-attempts", type=int, default=None,
                        metavar="N",
                        help="worker losses before a job is quarantined "
                             "(default 3)")
        cp.add_argument("--json", action="store_true")

    cp = csub.add_parser("status", help="journal-based campaign progress")
    cp.add_argument("--store", required=True, metavar="DIR")
    cp.add_argument("--json", action="store_true")

    cp = csub.add_parser("doctor",
                         help="verify store/journal integrity (corrupt "
                              "objects, torn journal tails, dangling "
                              "leases); exit 1 on damage")
    cp.add_argument("--store", required=True, metavar="DIR")
    cp.add_argument("--json", action="store_true")

    cp = csub.add_parser("report", parents=[workload_parent, select],
                         help="aggregate POP metrics across the campaign")
    cp.add_argument("--store", required=True, metavar="DIR")
    cp.add_argument("--json", action="store_true")


def main(argv=None) -> int:
    """CLI entry point (``python -m repro ...``)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ICPP'18 CFPD runtime-optimization reproduction")
    sub = parser.add_subparsers(dest="command", required=True)
    workload_parent = _workload_parent()

    _EXPERIMENT_HELP = {
        "adaptive": "adaptive Δt x DLB interaction study",
        "breathing": "deposition per breathing pattern (ventilator cosim)",
    }
    for name in ("table1", "fig6", "fig7", "fig8", "fig9", "fig10",
                 "fig11", "ipc", "adaptive", "breathing"):
        p = sub.add_parser(
            name, parents=[workload_parent],
            help=_EXPERIMENT_HELP.get(name, f"regenerate {name}"))
        p.add_argument("--json", action="store_true",
                       help="emit structured rows as JSON")

    p = sub.add_parser("fig2", parents=[workload_parent],
                       help="regenerate the Fig. 2 trace timeline")
    p.add_argument("--step", type=int, default=0)
    p.add_argument("--width", type=int, default=100)
    p.add_argument("--json", action="store_true",
                   help="emit trace intervals as JSON")

    p = sub.add_parser("run", parents=[workload_parent],
                       help="run a custom configuration")
    p.add_argument("--cluster", default="thunder",
                   choices=["thunder", "marenostrum4", "mn4"])
    p.add_argument("--nranks", type=int, default=96)
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--mode", default="sync", choices=["sync", "coupled"])
    p.add_argument("--fluid-ranks", type=int, default=0)
    p.add_argument("--assembly", default="multidep",
                   choices=[s.value for s in Strategy])
    p.add_argument("--sgs", default="atomics",
                   choices=[s.value for s in Strategy])
    p.add_argument("--dlb", action="store_true")
    p.add_argument("--json", action="store_true",
                   help="emit the campaign-style job record as JSON")

    p = sub.add_parser("all", parents=[workload_parent],
                       help="regenerate every artifact into a dir")
    p.add_argument("--out", default="results", metavar="DIR")

    p = sub.add_parser("mesh", help="generate the airway mesh")
    p.add_argument("--generations", type=int, default=5)
    p.add_argument("--vtk", default=None, metavar="FILE",
                   help="write the mesh as legacy VTK")

    _add_campaign_parser(sub, workload_parent)

    args = parser.parse_args(argv)
    if args.command == "all":
        from .experiments import generate_all

        generate_all(args.out, spec=_spec_from(args))
        return 0
    if args.command == "fig2":
        return _cmd_fig2(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "mesh":
        return _cmd_mesh(args)
    if args.command == "campaign":
        handler = {"run": _cmd_campaign_run,
                   "resume": _cmd_campaign_run,
                   "status": _cmd_campaign_status,
                   "report": _cmd_campaign_report,
                   "doctor": _cmd_campaign_doctor}[args.campaign_command]
        return handler(args)
    return _cmd_experiment(args.command, args)


if __name__ == "__main__":
    sys.exit(main())
