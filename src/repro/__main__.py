"""Command-line interface: regenerate paper results or run custom setups.

Usage::

    python -m repro table1                # Table 1
    python -m repro fig2                  # trace timeline (ASCII)
    python -m repro fig6 | fig7           # hybrid strategy sweeps
    python -m repro fig8 | fig9 | fig10 | fig11   # DLB figures
    python -m repro ipc                   # Sec. 4.3 IPC counters
    python -m repro run --cluster thunder --nranks 96 --dlb \\
                        --mode coupled --fluid-ranks 64
    python -m repro mesh --generations 5 --vtk airway.vtk

Workload size flags (``--generations``, ``--steps``, ``--large``) apply to
every experiment subcommand.
"""

from __future__ import annotations

import argparse
import sys

from .app import (
    LARGE_PARTICLE_RATIO,
    SMALL_PARTICLE_RATIO,
    RunConfig,
    WorkloadSpec,
    get_workload,
    run_cfpd,
)
from .core import Strategy


def _spec_from(args) -> WorkloadSpec:
    kwargs = {}
    if args.generations is not None:
        kwargs["generations"] = args.generations
    if args.steps is not None:
        kwargs["n_steps"] = args.steps
    kwargs["particle_ratio"] = (LARGE_PARTICLE_RATIO if args.large
                                else SMALL_PARTICLE_RATIO)
    return WorkloadSpec(**kwargs)


def _add_workload_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--generations", type=int, default=None,
                   help="airway tree depth (default 5; paper 7)")
    p.add_argument("--steps", type=int, default=None,
                   help="time steps to simulate (default 10)")
    p.add_argument("--large", action="store_true",
                   help="use the 7e6-scaled particle load (default 4e5)")


def _cmd_experiment(name: str, args) -> int:
    from . import experiments as exp

    spec = _spec_from(args)
    runner = {
        "table1": lambda: exp.run_table1(spec=spec),
        "fig6": lambda: exp.run_fig6(spec=spec),
        "fig7": lambda: exp.run_fig7(spec=spec),
        "fig8": lambda: exp.run_fig8(spec=spec),
        "fig9": lambda: exp.run_fig9(spec=spec),
        "fig10": lambda: exp.run_fig10(spec=spec),
        "fig11": lambda: exp.run_fig11(spec=spec),
        "ipc": lambda: exp.run_ipc_counters(spec=spec),
    }[name]
    result = runner()
    print(result.format())
    return 0


def _cmd_fig2(args) -> int:
    from .experiments import run_fig2

    result = run_fig2(spec=_spec_from(args), step=args.step)
    print(result.render(width=args.width))
    return 0


def _cmd_run(args) -> int:
    spec = _spec_from(args)
    workload = get_workload(spec)
    config = RunConfig(
        cluster=args.cluster,
        nranks=args.nranks,
        threads_per_rank=args.threads,
        mode=args.mode,
        fluid_ranks=args.fluid_ranks,
        assembly_strategy=Strategy(args.assembly),
        sgs_strategy=Strategy(args.sgs),
        dlb=args.dlb)
    result = run_cfpd(config, workload=workload)
    print(f"workload: {workload.mesh}, {workload.total_injected} particles")
    print(f"config:   {config.label()} on {args.cluster}, "
          f"{args.nranks}x{args.threads}")
    print(f"total simulated time: {result.total_time * 1e3:.3f} ms "
          f"({spec.n_steps} steps)")
    for row in result.phase_summary():
        print(f"  {row['phase']:10s} L={row['load_balance']:.2f} "
              f"{row['percent_time']:5.1f}%")
    if args.dlb:
        s = result.dlb_stats
        print(f"DLB: {s.lend_events} lends, {s.cores_borrowed_total} cores "
              f"borrowed, peak team {s.max_team_capacity}")
    return 0


def _cmd_mesh(args) -> int:
    from .mesh import AirwayConfig, MeshResolution, build_airway_mesh, write_vtk

    airway = build_airway_mesh(
        AirwayConfig(generations=args.generations
                     if args.generations is not None else 5),
        MeshResolution())
    print(airway.mesh)
    print(f"{len(airway.segments)} segments, "
          f"{len(airway.junction_pairs)} junctions")
    if args.vtk:
        write_vtk(airway.mesh, args.vtk)
        print(f"wrote {args.vtk}")
    return 0


def main(argv=None) -> int:
    """CLI entry point (``python -m repro ...``)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ICPP'18 CFPD runtime-optimization reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("table1", "fig6", "fig7", "fig8", "fig9", "fig10",
                 "fig11", "ipc"):
        p = sub.add_parser(name, help=f"regenerate {name}")
        _add_workload_flags(p)

    p = sub.add_parser("fig2", help="regenerate the Fig. 2 trace timeline")
    _add_workload_flags(p)
    p.add_argument("--step", type=int, default=0)
    p.add_argument("--width", type=int, default=100)

    p = sub.add_parser("run", help="run a custom configuration")
    _add_workload_flags(p)
    p.add_argument("--cluster", default="thunder",
                   choices=["thunder", "marenostrum4", "mn4"])
    p.add_argument("--nranks", type=int, default=96)
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--mode", default="sync", choices=["sync", "coupled"])
    p.add_argument("--fluid-ranks", type=int, default=0)
    p.add_argument("--assembly", default="multidep",
                   choices=[s.value for s in Strategy])
    p.add_argument("--sgs", default="atomics",
                   choices=[s.value for s in Strategy])
    p.add_argument("--dlb", action="store_true")

    p = sub.add_parser("all", help="regenerate every artifact into a dir")
    _add_workload_flags(p)
    p.add_argument("--out", default="results", metavar="DIR")

    p = sub.add_parser("mesh", help="generate the airway mesh")
    p.add_argument("--generations", type=int, default=5)
    p.add_argument("--vtk", default=None, metavar="FILE",
                   help="write the mesh as legacy VTK")

    args = parser.parse_args(argv)
    if args.command == "all":
        from .experiments import generate_all

        generate_all(args.out, spec=_spec_from(args))
        return 0
    if args.command == "fig2":
        return _cmd_fig2(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "mesh":
        return _cmd_mesh(args)
    return _cmd_experiment(args.command, args)


if __name__ == "__main__":
    sys.exit(main())
