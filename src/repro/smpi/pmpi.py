"""PMPI-style interception layer.

Real DLB attaches to applications *transparently* by interposing on the MPI
profiling interface (PMPI): every blocking MPI call is wrapped so the library
learns when a process stops computing (call entry) and when it resumes (call
exit).  The simulated MPI reproduces that contract: any object implementing
:class:`PMPIHook` can be registered on a communicator and will be notified
around every blocking call, without any change to the application program —
the same "no source changes" property the paper emphasizes.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["PMPIHook", "HookList"]


@runtime_checkable
class PMPIHook(Protocol):
    """Observer notified at entry/exit of blocking MPI calls."""

    def on_mpi_enter(self, rank: int, call: str) -> None:
        """``rank`` entered blocking MPI call ``call`` (e.g. ``"recv"``)."""

    def on_mpi_exit(self, rank: int, call: str) -> None:
        """``rank`` returned from blocking MPI call ``call``."""


class HookList:
    """An ordered collection of hooks, dispatched around blocking calls."""

    def __init__(self) -> None:
        self._hooks: list[PMPIHook] = []

    def register(self, hook: PMPIHook) -> None:
        """Add ``hook``; it will see every subsequent blocking call."""
        self._hooks.append(hook)

    def unregister(self, hook: PMPIHook) -> None:
        """Remove ``hook`` (raises ValueError if absent)."""
        self._hooks.remove(hook)

    def enter(self, rank: int, call: str) -> None:
        """Notify every hook that ``rank`` entered blocking ``call``."""
        for hook in self._hooks:
            hook.on_mpi_enter(rank, call)

    def exit(self, rank: int, call: str) -> None:
        """Notify every hook that ``rank`` left blocking ``call``."""
        for hook in self._hooks:
            hook.on_mpi_exit(rank, call)

    def __len__(self) -> int:
        return len(self._hooks)
