"""Simulated MPI: world/communicators, point-to-point and collective
operations, and the PMPI interception layer used by DLB."""

from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    Comm,
    DeadlockError,
    JobKilledError,
    Message,
    MPIError,
    RankDeadError,
    World,
)
from .pmpi import HookList, PMPIHook

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "DeadlockError",
    "HookList",
    "JobKilledError",
    "Message",
    "MPIError",
    "PMPIHook",
    "RankDeadError",
    "World",
]
