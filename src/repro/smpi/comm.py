"""Simulated MPI: communicators, point-to-point, and collectives.

Rank programs are Python generators driven by the DES engine.  The API
mirrors mpi4py's lower-case object interface (``send``/``recv``/``isend``/
``bcast``/``allreduce``/...), with two differences imposed by the simulated
setting:

* blocking calls are written ``value = yield from comm.recv(...)`` because
  the program is itself a generator;
* message cost is computed from the cluster model (latency + bytes/bandwidth,
  intra-node vs. inter-node) rather than a real network.

Every blocking call is wrapped in the PMPI hook layer (:mod:`repro.smpi.pmpi`)
so that DLB can observe when ranks stop computing — exactly how the real DLB
library attaches to applications.

A :class:`World` is the whole job; :meth:`World.split` creates disjoint
sub-communicators, used by the coupled fluid/particle execution mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from ..machine import ClusterModel, rank_to_node
from ..sim import Engine, Event, Store
from .pmpi import HookList, PMPIHook

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "Comm", "World", "MPIError"]

ANY_SOURCE = -1
ANY_TAG = -1


class MPIError(RuntimeError):
    """Raised on misuse of the simulated MPI API."""


@dataclass(frozen=True)
class Message:
    """An in-flight point-to-point message (world-rank addressed)."""

    src: int
    dest: int
    tag: int
    comm_id: int
    payload: Any
    nbytes: float


def _payload_nbytes(payload: Any, nbytes: Optional[float]) -> float:
    """Message size: explicit, from ``.nbytes`` (numpy), or a small default."""
    if nbytes is not None:
        return float(nbytes)
    measured = getattr(payload, "nbytes", None)
    if measured is not None:
        return float(measured)
    return 64.0


class _Collective:
    """State of one in-flight collective operation (one per call site)."""

    __slots__ = ("kind", "n", "contribs", "done", "nbytes_total")

    def __init__(self, engine: Engine, kind: str, n: int):
        self.kind = kind
        self.n = n
        self.contribs: dict[int, Any] = {}
        self.done: Event = engine.event()
        self.nbytes_total = 0.0


class Comm:
    """A communicator: an ordered group of world ranks.

    One :class:`Comm` instance exists per (group, member); ``rank``/``size``
    follow MPI conventions (local rank within the group).
    """

    def __init__(self, world: "World", comm_id: int, group: Sequence[int],
                 rank: int):
        self._world = world
        self.comm_id = comm_id
        self.group = tuple(group)
        self.rank = rank
        self.world_rank = self.group[rank]

    # -- introspection ------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        return len(self.group)

    @property
    def engine(self) -> Engine:
        """The underlying simulation engine."""
        return self._world.engine

    @property
    def node(self) -> int:
        """Node index this rank is placed on."""
        return self._world.node_of(self.world_rank)

    def world_rank_of(self, local_rank: int) -> int:
        """Translate a rank local to this communicator to a world rank."""
        return self.group[local_rank]

    # -- internal helpers -----------------------------------------------------
    def _blocking(self, call: str):
        world = self._world
        world.hooks.enter(self.world_rank, call)
        t0 = world.engine.now
        return t0

    def _unblock(self, call: str, t0: float) -> None:
        world = self._world
        world.hooks.exit(self.world_rank, call)
        world.account_mpi(self.world_rank, call, t0, world.engine.now)

    # -- point to point -------------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0,
             nbytes: Optional[float] = None):
        """Blocking send to local rank ``dest`` (generator; use yield from)."""
        if not 0 <= dest < self.size:
            raise MPIError(f"dest {dest} out of range for comm size {self.size}")
        t0 = self._blocking("send")
        yield from self._transfer(payload, dest, tag, nbytes)
        self._unblock("send", t0)

    def isend(self, payload: Any, dest: int, tag: int = 0,
              nbytes: Optional[float] = None) -> Event:
        """Non-blocking send; returns an event triggering at delivery."""
        if not 0 <= dest < self.size:
            raise MPIError(f"dest {dest} out of range for comm size {self.size}")
        return self._world.engine.process(
            self._transfer(payload, dest, tag, nbytes),
            name=f"isend[{self.world_rank}->{self.group[dest]}]")

    def _transfer(self, payload: Any, dest: int, tag: int,
                  nbytes: Optional[float]):
        world = self._world
        size = _payload_nbytes(payload, nbytes)
        dest_world = self.group[dest]
        delay = world.cluster.message_seconds(
            world.node_of(self.world_rank), world.node_of(dest_world), size)
        yield world.engine.timeout(delay)
        world.deliver(Message(src=self.rank, dest=dest, tag=tag,
                              comm_id=self.comm_id, payload=payload,
                              nbytes=size), dest_world)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the matching payload (yield from)."""
        t0 = self._blocking("recv")
        msg = yield self._match(source, tag)
        self._unblock("recv", t0)
        return msg.payload

    def recv_msg(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Like :meth:`recv` but returns the full :class:`Message` envelope."""
        t0 = self._blocking("recv")
        msg = yield self._match(source, tag)
        self._unblock("recv", t0)
        return msg

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Non-blocking receive; the returned event carries the Message."""
        return self._match(source, tag)

    def _match(self, source: int, tag: int) -> Event:
        def predicate(msg: Message) -> bool:
            return (msg.comm_id == self.comm_id
                    and (source == ANY_SOURCE or msg.src == source)
                    and (tag == ANY_TAG or msg.tag == tag))
        return self._world.mailbox(self.world_rank).get(predicate)

    def wait(self, event: Event):
        """Blocking wait on a request event (isend/irecv), with PMPI hooks."""
        t0 = self._blocking("wait")
        value = yield event
        self._unblock("wait", t0)
        return value

    def waitall(self, events: Iterable[Event]):
        """Blocking wait on several request events; returns their values."""
        t0 = self._blocking("waitall")
        values = yield self._world.engine.all_of(list(events))
        self._unblock("waitall", t0)
        return values

    # -- collectives ----------------------------------------------------------
    def _collective(self, kind: str, contribution: Any,
                    nbytes: Optional[float] = None):
        """Join the next collective of this communicator; returns its state.

        MPI semantics: all ranks of the communicator must call collectives in
        the same order.  Each rank keeps a per-comm sequence number; the pair
        (comm_id, seq) identifies the operation instance.
        """
        world = self._world
        seq = world.next_collective_seq(self.comm_id, self.world_rank)
        key = (self.comm_id, seq)
        coll = world.collectives.get(key)
        if coll is None:
            coll = _Collective(world.engine, kind, self.size)
            world.collectives[key] = coll
        if coll.kind != kind:
            raise MPIError(
                f"collective mismatch on comm {self.comm_id}: rank "
                f"{self.rank} called {kind!r} but operation #{seq} is "
                f"{coll.kind!r}")
        coll.contribs[self.rank] = contribution
        coll.nbytes_total += _payload_nbytes(contribution, nbytes)
        t0 = self._blocking(kind)
        if len(coll.contribs) == coll.n:
            del world.collectives[key]
            delay = self._collective_cost(coll)
            done = coll.done

            def finish():
                yield world.engine.timeout(delay)
                done.succeed(dict(coll.contribs))

            world.engine.process(finish(), name=f"{kind}[{self.comm_id}]")
        contribs = yield coll.done
        self._unblock(kind, t0)
        return contribs

    def _collective_cost(self, coll: _Collective) -> float:
        """Hierarchical tree collective: intra-node reduction trees plus an
        inter-node exchange tree (the standard 2-level MPI algorithm)."""
        world = self._world
        nodes: dict[int, int] = {}
        for w in self.group:
            node = world.node_of(w)
            nodes[node] = nodes.get(node, 0) + 1
        per_rank = coll.nbytes_total / max(1, coll.n)
        intra_steps = max(1, math.ceil(math.log2(max(2, max(nodes.values())))))
        cost = intra_steps * world.cluster.intranode.transfer_seconds(per_rank)
        if len(nodes) > 1:
            inter_steps = max(1, math.ceil(math.log2(len(nodes))))
            cost += inter_steps * world.cluster.interconnect.transfer_seconds(
                per_rank)
        return cost

    def barrier(self):
        """Synchronize all ranks of the communicator."""
        yield from self._collective("barrier", None, nbytes=1.0)

    def iallreduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
                   nbytes: Optional[float] = None) -> Event:
        """Non-blocking allreduce: returns an event carrying the result.

        The calling rank is *not* blocked (no PMPI hooks fire), so DLB sees
        no lending opportunity — the trade-off between communication
        overlap and dynamic balancing.  Complete with ``comm.wait(ev)``
        (which does fire the hooks for the waiting time).
        """
        world = self._world
        seq = world.next_collective_seq(self.comm_id, self.world_rank)
        key = (self.comm_id, seq)
        coll = world.collectives.get(key)
        if coll is None:
            coll = _Collective(world.engine, "iallreduce", self.size)
            world.collectives[key] = coll
        if coll.kind != "iallreduce":
            raise MPIError(
                f"collective mismatch on comm {self.comm_id}: rank "
                f"{self.rank} called 'iallreduce' but operation #{seq} is "
                f"{coll.kind!r}")
        coll.contribs[self.rank] = value
        coll.nbytes_total += _payload_nbytes(value, nbytes)
        if len(coll.contribs) == coll.n:
            del world.collectives[key]
            delay = self._collective_cost(coll)
            done = coll.done

            def finish():
                yield world.engine.timeout(delay)
                done.succeed(dict(coll.contribs))

            world.engine.process(finish(), name=f"iallreduce[{self.comm_id}]")
        # derive a per-rank event carrying the reduced value
        result = world.engine.event()

        def relay(ev: Event) -> None:
            contribs = ev.value
            result.succeed(_reduce_values(
                [contribs[r] for r in range(self.size)], op))

        if coll.done.processed:
            relay(coll.done)
        else:
            coll.done.callbacks.append(relay)
        return result

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
                  nbytes: Optional[float] = None):
        """Reduce ``value`` across ranks; every rank gets the result."""
        contribs = yield from self._collective("allreduce", value, nbytes)
        return _reduce_values([contribs[r] for r in range(self.size)], op)

    def reduce(self, value: Any, root: int = 0,
               op: Callable[[Any, Any], Any] = None,
               nbytes: Optional[float] = None):
        """Reduce to ``root``; other ranks get ``None``."""
        contribs = yield from self._collective("reduce", value, nbytes)
        if self.rank != root:
            return None
        return _reduce_values([contribs[r] for r in range(self.size)], op)

    def bcast(self, value: Any, root: int = 0,
              nbytes: Optional[float] = None):
        """Broadcast ``root``'s value to every rank."""
        contribs = yield from self._collective("bcast", value, nbytes)
        return contribs[root]

    def gather(self, value: Any, root: int = 0,
               nbytes: Optional[float] = None):
        """Gather one value per rank to ``root`` (list ordered by rank)."""
        contribs = yield from self._collective("gather", value, nbytes)
        if self.rank != root:
            return None
        return [contribs[r] for r in range(self.size)]

    def allgather(self, value: Any, nbytes: Optional[float] = None):
        """Gather one value per rank to *all* ranks."""
        contribs = yield from self._collective("allgather", value, nbytes)
        return [contribs[r] for r in range(self.size)]

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0,
                nbytes: Optional[float] = None):
        """Scatter ``root``'s list of size-``size`` values, one per rank."""
        contribs = yield from self._collective("scatter", values, nbytes)
        root_values = contribs[root]
        if root_values is None or len(root_values) != self.size:
            raise MPIError("scatter root must supply one value per rank")
        return root_values[self.rank]

    def alltoall(self, values: Sequence[Any],
                 nbytes: Optional[float] = None):
        """Each rank supplies one value per peer; receives one from each."""
        if len(values) != self.size:
            raise MPIError("alltoall needs exactly one value per rank")
        contribs = yield from self._collective("alltoall", list(values), nbytes)
        return [contribs[r][self.rank] for r in range(self.size)]

    # -- convenience --------------------------------------------------------
    def compute(self, seconds: float):
        """Pure computation for ``seconds`` (accounted as useful work)."""
        t0 = self._world.engine.now
        yield self._world.engine.timeout(seconds)
        self._world.account_compute(self.world_rank, t0,
                                    self._world.engine.now)


def _reduce_values(values: list[Any], op: Optional[Callable[[Any, Any], Any]]):
    if op is None:
        result = values[0]
        for v in values[1:]:
            result = result + v
        return result
    result = values[0]
    for v in values[1:]:
        result = op(result, v)
    return result


class World:
    """A simulated MPI job: ranks placed on a cluster, with PMPI hooks.

    Parameters
    ----------
    engine:
        The DES engine everything runs on.
    cluster:
        Hardware model (placement + message costs).
    nranks:
        Number of MPI processes in the job.
    mapping:
        ``"block"`` or ``"cyclic"`` process-to-node placement.
    """

    def __init__(self, engine: Engine, cluster: ClusterModel, nranks: int,
                 mapping: str = "block"):
        if nranks < 1:
            raise MPIError(f"nranks must be >= 1, got {nranks}")
        self.engine = engine
        self.cluster = cluster
        self.nranks = nranks
        self.mapping = mapping
        self.hooks = HookList()
        self.collectives: dict[tuple[int, int], _Collective] = {}
        self._coll_seq: dict[tuple[int, int], int] = {}
        self._mailboxes = [Store(engine) for _ in range(nranks)]
        self._next_comm_id = 1
        self._node_of = [rank_to_node(r, nranks, cluster.num_nodes, mapping)
                         for r in range(nranks)]
        #: accumulated (mpi_seconds, compute_seconds) per world rank
        self.mpi_seconds = [0.0] * nranks
        self.compute_seconds = [0.0] * nranks
        #: optional recorder with record(rank, category, name, t0, t1)
        self.recorder: Optional[Any] = None

    # -- topology -----------------------------------------------------------
    def node_of(self, world_rank: int) -> int:
        """Node index of ``world_rank``."""
        return self._node_of[world_rank]

    def ranks_on_node(self, node: int) -> list[int]:
        """All world ranks placed on ``node``."""
        return [r for r in range(self.nranks) if self._node_of[r] == node]

    # -- communicators --------------------------------------------------------
    def comm_world(self, rank: int) -> Comm:
        """COMM_WORLD as seen from ``rank``."""
        return Comm(self, comm_id=0, group=range(self.nranks), rank=rank)

    def split(self, groups: Sequence[Sequence[int]]) -> list[list[Comm]]:
        """Create one sub-communicator per group of world ranks.

        Returns, for each group, the list of per-member :class:`Comm` views.
        Groups must be disjoint but need not cover all ranks.
        """
        seen: set[int] = set()
        for g in groups:
            for r in g:
                if r in seen:
                    raise MPIError(f"rank {r} appears in two groups")
                if not 0 <= r < self.nranks:
                    raise MPIError(f"rank {r} out of range")
                seen.add(r)
        result = []
        for g in groups:
            cid = self._next_comm_id
            self._next_comm_id += 1
            result.append([Comm(self, cid, g, i) for i in range(len(g))])
        return result

    # -- plumbing used by Comm ------------------------------------------------
    def mailbox(self, world_rank: int) -> Store:
        """The destination message queue of ``world_rank``."""
        return self._mailboxes[world_rank]

    def deliver(self, msg: Message, dest_world_rank: int) -> None:
        """Put a message into the mailbox of ``dest_world_rank``.

        ``msg.src``/``msg.dest`` stay comm-local (matching happens inside the
        destination's view of the same communicator); routing uses the world
        rank resolved by the sender.
        """
        self._mailboxes[dest_world_rank].put(msg)

    def account_mpi(self, world_rank: int, call: str, t0: float,
                    t1: float) -> None:
        """Accumulate blocking-MPI time and notify the recorder."""
        self.mpi_seconds[world_rank] += t1 - t0
        if self.recorder is not None:
            self.recorder.record(world_rank, "mpi", call, t0, t1)

    def account_compute(self, world_rank: int, t0: float, t1: float) -> None:
        """Accumulate useful-compute time and notify the recorder."""
        self.compute_seconds[world_rank] += t1 - t0
        if self.recorder is not None:
            self.recorder.record(world_rank, "compute", "compute", t0, t1)

    def next_collective_seq(self, comm_id: int, world_rank: int) -> int:
        """Per-(comm, rank) collective call counter."""
        key = (comm_id, world_rank)
        seq = self._coll_seq.get(key, 0)
        self._coll_seq[key] = seq + 1
        return seq

    # -- job control ----------------------------------------------------------
    def launch(self, program: Callable[..., Any], *args: Any,
               ranks: Optional[Iterable[int]] = None, **kwargs: Any):
        """Start ``program(comm, *args, **kwargs)`` on each rank.

        ``program`` is a generator function taking the rank's COMM_WORLD view
        first.  Returns the list of rank Processes.
        """
        procs = []
        for r in (range(self.nranks) if ranks is None else ranks):
            comm = self.comm_world(r)
            procs.append(self.engine.process(program(comm, *args, **kwargs),
                                             name=f"rank{r}"))
        return procs

    def run(self, procs, until: Optional[float] = None):
        """Run the engine; raise if any rank program failed."""
        self.engine.run(until=until)
        # Surface real failures before reporting any consequent deadlock.
        for p in procs:
            if p.triggered and not p.ok:
                raise p.value
        for p in procs:
            if not p.triggered:
                raise MPIError(
                    f"deadlock: process {p.name} never completed "
                    f"(simulated t={self.engine.now:.6f}s)")
        return [p.value for p in procs]
