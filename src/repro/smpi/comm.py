"""Simulated MPI: communicators, point-to-point, and collectives.

Rank programs are Python generators driven by the DES engine.  The API
mirrors mpi4py's lower-case object interface (``send``/``recv``/``isend``/
``bcast``/``allreduce``/...), with two differences imposed by the simulated
setting:

* blocking calls are written ``value = yield from comm.recv(...)`` because
  the program is itself a generator;
* message cost is computed from the cluster model (latency + bytes/bandwidth,
  intra-node vs. inter-node) rather than a real network.

Every blocking call is wrapped in the PMPI hook layer (:mod:`repro.smpi.pmpi`)
so that DLB can observe when ranks stop computing — exactly how the real DLB
library attaches to applications.

A :class:`World` is the whole job; :meth:`World.split` creates disjoint
sub-communicators, used by the coupled fluid/particle execution mode.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Iterable, NamedTuple, Optional, Sequence

from ..machine import ClusterModel, rank_to_node
from ..perf import toggles as _perf_toggles
from ..sim import Engine, Event, Store
from .pmpi import HookList

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "Comm",
    "World",
    "MPIError",
    "RankDeadError",
    "DeadlockError",
    "JobKilledError",
]

ANY_SOURCE = -1
ANY_TAG = -1


class MPIError(RuntimeError):
    """Raised on misuse of the simulated MPI API."""


class RankDeadError(MPIError):
    """A point-to-point operation involved a rank that has died.

    Follows the spirit of MPI ULFM (User-Level Failure Mitigation):
    collectives shrink to the survivors transparently, but a receive posted
    for (or in flight from) a dead peer raises this error so the
    application can decide how to degrade.
    """

    def __init__(self, rank: int, detail: str = ""):
        super().__init__(detail or f"rank {rank} is dead")
        self.rank = rank


class DeadlockError(MPIError):
    """The event queue drained while rank programs were still blocked.

    ``blocked`` holds one ``(name, call, since)`` triple per stuck process:
    the process name, the blocking MPI call it is suspended in (or ``"?"``
    when it is not inside the MPI layer), and the simulated time it entered
    that call.
    """

    def __init__(self, message: str, blocked: Iterable = ()):
        super().__init__(message)
        self.blocked = list(blocked)


class JobKilledError(MPIError):
    """The whole simulated job was aborted mid-run (injected kill)."""

    def __init__(self, reason: str, time: float):
        super().__init__(
            f"job killed at simulated t={time:.6f}s: {reason}")
        self.reason = reason
        self.time = time


class Message(NamedTuple):
    """An in-flight point-to-point message (world-rank addressed).

    A named tuple rather than a frozen dataclass: one is built per simulated
    point-to-point send (~6k per CFPD run) and tuple construction skips the
    per-field ``object.__setattr__`` a frozen dataclass pays.
    """

    src: int
    dest: int
    tag: int
    comm_id: int
    payload: Any
    nbytes: float


def _payload_nbytes(payload: Any, nbytes: Optional[float]) -> float:
    """Message size: explicit, from ``.nbytes`` (numpy), or a small default."""
    if nbytes is not None:
        return float(nbytes)
    measured = getattr(payload, "nbytes", None)
    if measured is not None:
        return float(measured)
    return 64.0


class _KeyedMailbox:
    """Message queue with O(1) keyed matching (``engine_batch`` fast path).

    Observationally identical to a :class:`~repro.sim.Store` holding
    :class:`Message` items matched by (comm_id, src, tag) predicates: puts
    wake the oldest compatible getter, gets take the oldest compatible
    message.  The difference is purely mechanical — a fully-specified
    receive pops the head of a per-key deque instead of running a predicate
    closure down the arrival queue, and only wildcard receives still scan.

    A message taken through one index stays in the other as a tombstone
    (``rec[1] is True``); tombstones are skipped lazily and squeezed out
    when they outnumber live messages.
    """

    __slots__ = ("engine", "_order", "_by_key", "_getters", "_live")

    def __init__(self, engine: Engine):
        self.engine = engine
        #: arrival-ordered ``[msg, taken]`` records (wildcard scan order)
        self._order: deque = deque()
        #: (comm_id, src, tag) -> deque of records from ``_order``
        self._by_key: dict[tuple[int, int, int], deque] = {}
        #: blocked receivers: (event, comm_id, source, tag, meta)
        self._getters: deque = deque()
        #: records in ``_order`` that are not tombstones
        self._live = 0

    def put(self, msg: Message) -> None:
        """Deliver to the oldest compatible blocked getter, else enqueue."""
        getters = self._getters
        for i, g in enumerate(getters):
            if (g[1] == msg.comm_id
                    and (g[2] == ANY_SOURCE or g[2] == msg.src)
                    and (g[3] == ANY_TAG or g[3] == msg.tag)):
                del getters[i]
                g[0].succeed(msg)
                return
        rec = [msg, False]
        self._order.append(rec)
        self._live += 1
        key = (msg.comm_id, msg.src, msg.tag)
        kq = self._by_key.get(key)
        if kq is None:
            kq = self._by_key[key] = deque()
        kq.append(rec)

    def get_keyed(self, comm_id: int, source: int, tag: int,
                  meta: Any) -> Event:
        """Take the oldest message matching the receive, or block.

        ``source``/``tag`` may be the ``ANY_*`` wildcards; a fully keyed
        receive resolves without touching the arrival queue.
        """
        ev = Event(self.engine)
        if source != ANY_SOURCE and tag != ANY_TAG:
            kq = self._by_key.get((comm_id, source, tag))
            while kq:
                rec = kq.popleft()
                if not rec[1]:
                    rec[1] = True
                    self._live -= 1
                    self._maybe_compact()
                    ev.succeed(rec[0])
                    return ev
        else:
            for rec in self._order:
                if rec[1]:
                    continue
                msg = rec[0]
                if (msg.comm_id == comm_id
                        and (source == ANY_SOURCE or msg.src == source)
                        and (tag == ANY_TAG or msg.tag == tag)):
                    rec[1] = True
                    self._live -= 1
                    self._maybe_compact()
                    ev.succeed(msg)
                    return ev
        self._getters.append((ev, comm_id, source, tag, meta))
        return ev

    def _maybe_compact(self) -> None:
        order = self._order
        if len(order) > 64 and len(order) > 2 * self._live:
            self._order = order = deque(r for r in order if not r[1])
            by_key: dict[tuple[int, int, int], deque] = {}
            for rec in order:
                msg = rec[0]
                key = (msg.comm_id, msg.src, msg.tag)
                kq = by_key.get(key)
                if kq is None:
                    kq = by_key[key] = deque()
                kq.append(rec)
            self._by_key = by_key

    def fail_pending(self, match: Callable[[Any], bool],
                     exc: BaseException) -> int:
        """Fail every blocked getter whose meta matches; returns the count."""
        kept: deque = deque()
        failed = 0
        for g in self._getters:
            if match(g[4]):
                g[0].fail(exc)
                failed += 1
            else:
                kept.append(g)
        self._getters = kept
        return failed

    def peek_all(self) -> list[Message]:
        """Undelivered messages in arrival order (inspection only)."""
        return [rec[0] for rec in self._order if not rec[1]]

    def __len__(self) -> int:
        return self._live


class _Collective:
    """State of one in-flight collective operation (one per call site)."""

    __slots__ = ("kind", "n", "group", "contribs", "done", "nbytes_total")

    def __init__(self, engine: Engine, kind: str, n: int,
                 group: Sequence[int]):
        self.kind = kind
        self.n = n
        self.group = tuple(group)     # world ranks of the communicator
        self.contribs: dict[int, Any] = {}
        self.done: Event = Event(engine)
        self.nbytes_total = 0.0


class Comm:
    """A communicator: an ordered group of world ranks.

    One :class:`Comm` instance exists per (group, member); ``rank``/``size``
    follow MPI conventions (local rank within the group).
    """

    def __init__(self, world: "World", comm_id: int, group: Sequence[int],
                 rank: int):
        self._world = world
        self.comm_id = comm_id
        self.group = tuple(group)
        self.rank = rank
        self.world_rank = self.group[rank]
        # Cached rank order for collectives: when every member contributed
        # (the no-failure case) the sorted local-rank sequence is just
        # 0..size-1, so the per-call ``sorted(contribs)`` is skipped.
        self._rank_order = tuple(range(len(self.group)))
        #: (dest_world, nbytes) -> seconds; see _isend_start
        self._delay_cache: dict[tuple[int, float], float] = {}
        #: cached key into World._coll_seq (see _collective)
        self._seq_key = (comm_id, self.world_rank)

    # -- introspection ------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        return len(self.group)

    @property
    def engine(self) -> Engine:
        """The underlying simulation engine."""
        return self._world.engine

    @property
    def node(self) -> int:
        """Node index this rank is placed on."""
        return self._world.node_of(self.world_rank)

    def world_rank_of(self, local_rank: int) -> int:
        """Translate a rank local to this communicator to a world rank."""
        return self.group[local_rank]

    @property
    def world(self) -> "World":
        """The MPI job this communicator belongs to."""
        return self._world

    # -- internal helpers -----------------------------------------------------
    def _ordered_ranks(self, contribs: dict) -> Sequence[int]:
        """Contributing local ranks in ascending order (reduction order).

        Identical to ``sorted(contribs)``: a full contribution set is the
        cached ``0..size-1`` tuple; only shrunk (post-failure) collectives
        pay for a sort.
        """
        if len(contribs) == len(self.group):
            return self._rank_order
        return sorted(contribs)

    def _blocking(self, call: str, observed: bool = True):
        world = self._world
        if observed and world.hooks._hooks:
            world.hooks.enter(self.world_rank, call)
        t0 = world.engine.now
        world.pending_calls[self.world_rank] = (call, t0)
        return t0

    def _unblock(self, call: str, t0: float, observed: bool = True) -> None:
        world = self._world
        world.pending_calls.pop(self.world_rank, None)
        if observed and world.hooks._hooks:
            world.hooks.exit(self.world_rank, call)
        # inlined World.account_mpi (two calls per blocking MPI operation)
        world.mpi_seconds[self.world_rank] += world.engine.now - t0
        if world.recorder is not None:
            world.recorder.record(self.world_rank, "mpi", call, t0,
                                  world.engine.now)

    # -- point to point -------------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0,
             nbytes: Optional[float] = None):
        """Blocking send to local rank ``dest`` (generator; use yield from)."""
        if not 0 <= dest < self.size:
            raise MPIError(f"dest {dest} out of range for comm size {self.size}")
        t0 = self._blocking("send")
        try:
            yield from self._transfer(payload, dest, tag, nbytes)
        finally:
            self._unblock("send", t0)

    def isend(self, payload: Any, dest: int, tag: int = 0,
              nbytes: Optional[float] = None) -> Event:
        """Non-blocking send; returns an event triggering at delivery."""
        if not 0 <= dest < self.size:
            raise MPIError(f"dest {dest} out of range for comm size {self.size}")
        world = self._world
        if world._fast_finish:
            # Callback-based transfer: the deferral is posted where the
            # Process bootstrap would be and the delivery timeout is created
            # when it pops, so the event trajectory matches the generator
            # path below; ``req`` stands in for the Process request handle.
            req = Event(world.engine)
            world.engine.defer(self._isend_start, payload, dest, tag,
                               nbytes, req)
            return req
        return world.engine.process(
            self._transfer(payload, dest, tag, nbytes),
            name=f"isend[{self.world_rank}->{self.group[dest]}]")

    def _isend_start(self, payload: Any, dest: int, tag: int,
                     nbytes: Optional[float], req: Event) -> None:
        world = self._world
        size = (float(nbytes) if nbytes is not None
                else _payload_nbytes(payload, None))
        dest_world = self.group[dest]
        if world._batch:
            # message cost is a pure function of (placement, size), and halo
            # exchanges repeat identical (peer, size) pairs every step
            dc = self._delay_cache
            delay = dc.get((dest_world, size))
            if delay is None:
                delay = world.cluster.message_seconds(
                    world.node_of(self.world_rank),
                    world.node_of(dest_world), size)
                dc[(dest_world, size)] = delay
        else:
            delay = world.cluster.message_seconds(
                world.node_of(self.world_rank), world.node_of(dest_world),
                size)
        dropped = False
        if world.fault_controller is not None:
            dropped, extra = world.fault_controller.on_message(
                self.world_rank, dest_world, size)
            delay += extra
        if dropped:
            world.engine.call_later(delay, req.succeed, None)
            return
        # The Message is immutable, so building it at send time instead of
        # inside a delivery closure is observationally identical — and the
        # call_later rides fn/args slots, allocating no closure frame.
        msg = Message(self.rank, dest, tag, self.comm_id, payload, size)
        world.engine.call_later(delay, self._finish_isend, msg, dest_world,
                                req)

    def _finish_isend(self, msg: Message, dest_world: int,
                      req: Event) -> None:
        self._world.deliver(msg, dest_world)
        req.succeed(None)

    def _transfer(self, payload: Any, dest: int, tag: int,
                  nbytes: Optional[float]):
        world = self._world
        size = _payload_nbytes(payload, nbytes)
        dest_world = self.group[dest]
        delay = world.cluster.message_seconds(
            world.node_of(self.world_rank), world.node_of(dest_world), size)
        dropped = False
        if world.fault_controller is not None:
            dropped, extra = world.fault_controller.on_message(
                self.world_rank, dest_world, size)
            delay += extra
        yield world.engine.timeout(delay)
        if not dropped:
            world.deliver(Message(src=self.rank, dest=dest, tag=tag,
                                  comm_id=self.comm_id, payload=payload,
                                  nbytes=size), dest_world)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the matching payload (yield from).

        Raises :class:`RankDeadError` if ``source`` is (or dies while the
        receive is pending) a dead rank.
        """
        t0 = self._blocking("recv")
        try:
            msg = yield self._match(source, tag)
        finally:
            self._unblock("recv", t0)
        return msg.payload

    def recv_msg(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Like :meth:`recv` but returns the full :class:`Message` envelope."""
        t0 = self._blocking("recv")
        try:
            msg = yield self._match(source, tag)
        finally:
            self._unblock("recv", t0)
        return msg

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Non-blocking receive; the returned event carries the Message."""
        return self._match(source, tag)

    def _match(self, source: int, tag: int) -> Event:
        world = self._world
        if source != ANY_SOURCE and self.group[source] in world.dead_ranks:
            src_world = self.group[source]
            ev = world.engine.event()
            ev.fail(RankDeadError(
                src_world, f"receive posted for dead rank {src_world}"))
            return ev

        meta = None if source == ANY_SOURCE else {"src": self.group[source]}
        box = world.mailbox(self.world_rank)
        if world._batch:
            return box.get_keyed(self.comm_id, source, tag, meta)

        def predicate(msg: Message) -> bool:
            return (msg.comm_id == self.comm_id
                    and (source == ANY_SOURCE or msg.src == source)
                    and (tag == ANY_TAG or msg.tag == tag))

        return box.get(predicate, meta=meta)

    def wait(self, event: Event):
        """Blocking wait on a request event (isend/irecv), with PMPI hooks."""
        t0 = self._blocking("wait")
        try:
            value = yield event
        finally:
            self._unblock("wait", t0)
        return value

    def waitall(self, events: Iterable[Event]):
        """Blocking wait on several request events; returns their values."""
        t0 = self._blocking("waitall")
        try:
            values = yield self._world.engine.all_of(list(events))
        finally:
            self._unblock("waitall", t0)
        return values

    # -- collectives ----------------------------------------------------------
    def _collective(self, kind: str, contribution: Any,
                    nbytes: Optional[float] = None, observed: bool = True):
        """Join the next collective of this communicator; returns its state.

        MPI semantics: all ranks of the communicator must call collectives in
        the same order.  Each rank keeps a per-comm sequence number; the pair
        (comm_id, seq) identifies the operation instance.  ``observed=False``
        hides the call from PMPI hooks (still timed and deadlock-tracked).
        """
        world = self._world
        # inlined World.next_collective_seq with the (comm_id, world_rank)
        # key tuple cached on the communicator (one collective call per rank
        # per phase — ~10k per CFPD run)
        ck = self._seq_key
        cs = world._coll_seq
        seq = cs.get(ck, 0)
        cs[ck] = seq + 1
        key = (self.comm_id, seq)
        coll = world.collectives.get(key)
        if coll is None:
            coll = _Collective(world.engine, kind, self.size, self.group)
            world.collectives[key] = coll
        if coll.kind != kind:
            raise MPIError(
                f"collective mismatch on comm {self.comm_id}: rank "
                f"{self.rank} called {kind!r} but operation #{seq} is "
                f"{coll.kind!r}")
        coll.contribs[self.rank] = contribution
        coll.nbytes_total += (float(nbytes) if nbytes is not None
                              else _payload_nbytes(contribution, None))
        t0 = self._blocking(kind, observed)
        world.maybe_finish_collective(key)
        try:
            contribs = yield coll.done
        finally:
            self._unblock(kind, t0, observed)
        return contribs

    def barrier(self, observed: bool = True):
        """Synchronize all ranks of the communicator.

        ``observed=False`` keeps the barrier invisible to PMPI hooks —
        used for checkpoint cuts, where DLB lending across the barrier
        would make the post-cut timeline depend on whether the barrier
        was executed (a restarted run never executes it).
        """
        yield from self._collective("barrier", None, nbytes=1.0,
                                    observed=observed)

    def iallreduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
                   nbytes: Optional[float] = None) -> Event:
        """Non-blocking allreduce: returns an event carrying the result.

        The calling rank is *not* blocked (no PMPI hooks fire), so DLB sees
        no lending opportunity — the trade-off between communication
        overlap and dynamic balancing.  Complete with ``comm.wait(ev)``
        (which does fire the hooks for the waiting time).
        """
        world = self._world
        seq = world.next_collective_seq(self.comm_id, self.world_rank)
        key = (self.comm_id, seq)
        coll = world.collectives.get(key)
        if coll is None:
            coll = _Collective(world.engine, "iallreduce", self.size,
                               self.group)
            world.collectives[key] = coll
        if coll.kind != "iallreduce":
            raise MPIError(
                f"collective mismatch on comm {self.comm_id}: rank "
                f"{self.rank} called 'iallreduce' but operation #{seq} is "
                f"{coll.kind!r}")
        coll.contribs[self.rank] = value
        coll.nbytes_total += _payload_nbytes(value, nbytes)
        world.maybe_finish_collective(key)
        # derive a per-rank event carrying the reduced value
        result = world.engine.event()

        def relay(ev: Event) -> None:
            contribs = ev.value
            result.succeed(_reduce_values(
                [contribs[r] for r in self._ordered_ranks(contribs)], op))

        if coll.done.processed:
            relay(coll.done)
        else:
            coll.done.callbacks.append(relay)
        return result

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
                  nbytes: Optional[float] = None):
        """Reduce ``value`` across ranks; every rank gets the result.

        When ranks have died, the reduction runs over the survivors'
        contributions (collectives shrink, ULFM-style).
        """
        contribs = yield from self._collective("allreduce", value, nbytes)
        world = self._world
        if world._batch:
            # every member computes the identical reduction over the shared
            # contribution dict — compute it once per (collective, op) and
            # share the result when it is immutable (n ranks x n terms
            # otherwise).  The cache entry pins the contribs dict, so an
            # id() hit is guaranteed to be the same collective.
            cache = world._reduce_cache
            entry = cache.get(id(contribs))
            if entry is not None and entry[0] is contribs:
                by_op = entry[1]
                hit = by_op.get(id(op), _REDUCE_MISS)
                if hit is not _REDUCE_MISS:
                    return hit
            else:
                if len(cache) > 16:
                    cache.clear()
                by_op = {}
                cache[id(contribs)] = (contribs, by_op)
            result = _reduce_values(
                [contribs[r] for r in self._ordered_ranks(contribs)], op)
            if type(result) in _SHAREABLE_TYPES:
                by_op[id(op)] = result
            return result
        return _reduce_values(
            [contribs[r] for r in self._ordered_ranks(contribs)], op)

    def reduce(self, value: Any, root: int = 0,
               op: Callable[[Any, Any], Any] = None,
               nbytes: Optional[float] = None):
        """Reduce to ``root``; other ranks get ``None``."""
        contribs = yield from self._collective("reduce", value, nbytes)
        if self.rank != root:
            return None
        return _reduce_values(
            [contribs[r] for r in self._ordered_ranks(contribs)], op)

    def bcast(self, value: Any, root: int = 0,
              nbytes: Optional[float] = None):
        """Broadcast ``root``'s value to every rank."""
        contribs = yield from self._collective("bcast", value, nbytes)
        if root not in contribs:
            raise RankDeadError(self.group[root],
                                f"bcast root {root} died before contributing")
        return contribs[root]

    def gather(self, value: Any, root: int = 0,
               nbytes: Optional[float] = None):
        """Gather one value per rank to ``root`` (list ordered by rank).

        Dead ranks' slots are ``None``.
        """
        contribs = yield from self._collective("gather", value, nbytes)
        if self.rank != root:
            return None
        return [contribs.get(r) for r in range(self.size)]

    def allgather(self, value: Any, nbytes: Optional[float] = None):
        """Gather one value per rank to *all* ranks (dead slots ``None``)."""
        contribs = yield from self._collective("allgather", value, nbytes)
        return [contribs.get(r) for r in range(self.size)]

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0,
                nbytes: Optional[float] = None):
        """Scatter ``root``'s list of size-``size`` values, one per rank."""
        contribs = yield from self._collective("scatter", values, nbytes)
        root_values = contribs.get(root)
        if root_values is None or len(root_values) != self.size:
            raise MPIError("scatter root must supply one value per rank")
        return root_values[self.rank]

    def alltoall(self, values: Sequence[Any],
                 nbytes: Optional[float] = None):
        """Each rank supplies one value per peer; receives one from each
        surviving peer (in rank order)."""
        if len(values) != self.size:
            raise MPIError("alltoall needs exactly one value per rank")
        contribs = yield from self._collective("alltoall", list(values), nbytes)
        return [contribs[r][self.rank]
                for r in self._ordered_ranks(contribs)]

    # -- convenience --------------------------------------------------------
    def compute(self, seconds: float):
        """Pure computation for ``seconds`` (accounted as useful work)."""
        t0 = self._world.engine.now
        yield self._world.engine.timeout(seconds)
        self._world.account_compute(self.world_rank, t0,
                                    self._world.engine.now)


#: result types safe to hand to every rank as one shared object (immutable,
#: so no rank can perturb another through the alias)
_SHAREABLE_TYPES = frozenset(
    (int, float, bool, complex, str, bytes, type(None)))
_REDUCE_MISS = object()


def _reduce_values(values: list[Any], op: Optional[Callable[[Any, Any], Any]]):
    if op is None:
        result = values[0]
        for v in values[1:]:
            result = result + v
        return result
    result = values[0]
    for v in values[1:]:
        result = op(result, v)
    return result


class World:
    """A simulated MPI job: ranks placed on a cluster, with PMPI hooks.

    Parameters
    ----------
    engine:
        The DES engine everything runs on.
    cluster:
        Hardware model (placement + message costs).
    nranks:
        Number of MPI processes in the job.
    mapping:
        ``"block"`` or ``"cyclic"`` process-to-node placement.
    """

    def __init__(self, engine: Engine, cluster: ClusterModel, nranks: int,
                 mapping: str = "block"):
        if nranks < 1:
            raise MPIError(f"nranks must be >= 1, got {nranks}")
        self.engine = engine
        self.cluster = cluster
        self.nranks = nranks
        self.mapping = mapping
        self.hooks = HookList()
        self.collectives: dict[tuple[int, int], _Collective] = {}
        self._coll_seq: dict[tuple[int, int], int] = {}
        self._batch = _perf_toggles.TOGGLES.engine_batch
        if self._batch:
            self._mailboxes: list[Any] = [_KeyedMailbox(engine)
                                          for _ in range(nranks)]
        else:
            self._mailboxes = [Store(engine) for _ in range(nranks)]
        #: id(contribs) -> (contribs, {id(op): shared result}) — see allreduce
        self._reduce_cache: dict[int, tuple] = {}
        self._next_comm_id = 1
        self._node_of = [rank_to_node(r, nranks, cluster.num_nodes, mapping)
                         for r in range(nranks)]
        #: accumulated (mpi_seconds, compute_seconds) per world rank
        self.mpi_seconds = [0.0] * nranks
        self.compute_seconds = [0.0] * nranks
        #: optional recorder with record(rank, category, name, t0, t1)
        self.recorder: Optional[Any] = None
        #: world ranks that have been killed (failure injection)
        self.dead_ranks: set[int] = set()
        #: world_rank -> (call, entered_at) for every rank blocked in MPI
        self.pending_calls: dict[int, tuple[str, float]] = {}
        #: optional fault controller with on_message(src, dest, nbytes)
        self.fault_controller: Optional[Any] = None
        self._rank_procs: dict[int, Any] = {}
        #: group tuple -> (intra_steps, inter_steps) for collective_cost;
        #: pure topology, static for the lifetime of the world.
        self._group_topo: dict[tuple, tuple[int, int]] = {}
        self._fast = _perf_toggles.TOGGLES.comm_fast_path
        self._fast_finish = _perf_toggles.TOGGLES.runtime_fast_path

    # -- topology -----------------------------------------------------------
    def node_of(self, world_rank: int) -> int:
        """Node index of ``world_rank``."""
        return self._node_of[world_rank]

    def ranks_on_node(self, node: int) -> list[int]:
        """All world ranks placed on ``node``."""
        return [r for r in range(self.nranks) if self._node_of[r] == node]

    # -- communicators --------------------------------------------------------
    def comm_world(self, rank: int) -> Comm:
        """COMM_WORLD as seen from ``rank``."""
        return Comm(self, comm_id=0, group=range(self.nranks), rank=rank)

    def split(self, groups: Sequence[Sequence[int]]) -> list[list[Comm]]:
        """Create one sub-communicator per group of world ranks.

        Returns, for each group, the list of per-member :class:`Comm` views.
        Groups must be disjoint but need not cover all ranks.
        """
        seen: set[int] = set()
        for g in groups:
            for r in g:
                if r in seen:
                    raise MPIError(f"rank {r} appears in two groups")
                if not 0 <= r < self.nranks:
                    raise MPIError(f"rank {r} out of range")
                seen.add(r)
        result = []
        for g in groups:
            cid = self._next_comm_id
            self._next_comm_id += 1
            result.append([Comm(self, cid, g, i) for i in range(len(g))])
        return result

    # -- plumbing used by Comm ------------------------------------------------
    def mailbox(self, world_rank: int):
        """The destination message queue of ``world_rank``.

        A :class:`~repro.sim.Store`, or a :class:`_KeyedMailbox` under the
        ``engine_batch`` toggle — same put/get-match/fail_pending contract.
        """
        return self._mailboxes[world_rank]

    def deliver(self, msg: Message, dest_world_rank: int) -> None:
        """Put a message into the mailbox of ``dest_world_rank``.

        ``msg.src``/``msg.dest`` stay comm-local (matching happens inside the
        destination's view of the same communicator); routing uses the world
        rank resolved by the sender.  Messages addressed to a dead rank are
        silently discarded, like packets to a crashed node.
        """
        if dest_world_rank in self.dead_ranks:
            return
        self._mailboxes[dest_world_rank].put(msg)

    def account_mpi(self, world_rank: int, call: str, t0: float,
                    t1: float) -> None:
        """Accumulate blocking-MPI time and notify the recorder."""
        self.mpi_seconds[world_rank] += t1 - t0
        if self.recorder is not None:
            self.recorder.record(world_rank, "mpi", call, t0, t1)

    def account_compute(self, world_rank: int, t0: float, t1: float) -> None:
        """Accumulate useful-compute time and notify the recorder."""
        self.compute_seconds[world_rank] += t1 - t0
        if self.recorder is not None:
            self.recorder.record(world_rank, "compute", "compute", t0, t1)

    def next_collective_seq(self, comm_id: int, world_rank: int) -> int:
        """Per-(comm, rank) collective call counter."""
        key = (comm_id, world_rank)
        seq = self._coll_seq.get(key, 0)
        self._coll_seq[key] = seq + 1
        return seq

    def collective_cost(self, coll: _Collective) -> float:
        """Hierarchical tree collective: intra-node reduction trees plus an
        inter-node exchange tree (the standard 2-level MPI algorithm).

        The tree depths depend only on the group's node placement, which is
        static, so they are computed once per distinct group.
        """
        topo = self._group_topo.get(coll.group)
        if topo is None:
            nodes: dict[int, int] = {}
            for w in coll.group:
                node = self.node_of(w)
                nodes[node] = nodes.get(node, 0) + 1
            intra_steps = max(
                1, math.ceil(math.log2(max(2, max(nodes.values())))))
            inter_steps = (max(1, math.ceil(math.log2(len(nodes))))
                           if len(nodes) > 1 else 0)
            topo = (intra_steps, inter_steps)
            self._group_topo[coll.group] = topo
        intra_steps, inter_steps = topo
        per_rank = coll.nbytes_total / max(1, coll.n)
        cost = intra_steps * self.cluster.intranode.transfer_seconds(per_rank)
        if inter_steps:
            cost += inter_steps * self.cluster.interconnect.transfer_seconds(
                per_rank)
        return cost

    def maybe_finish_collective(self, key: tuple[int, int]) -> None:
        """Complete collective ``key`` once every *alive* member contributed.

        Called on each contribution and again whenever a rank dies, so that
        collectives shrink to the survivors instead of hanging on a
        contribution that will never arrive.
        """
        coll = self.collectives.get(key)
        if coll is None:
            return
        if self._fast and not self.dead_ranks:
            # No failures in the job: everyone is alive, so completion is
            # just a contribution count — no per-call group scan or filtered
            # copy of the contribution dict.
            if len(coll.contribs) < coll.n:
                return
            contribs = coll.contribs
        else:
            alive = [i for i, w in enumerate(coll.group)
                     if w not in self.dead_ranks]
            if not alive:
                # Everyone in the group died: nobody is waiting, drop it.
                del self.collectives[key]
                return
            if not all(i in coll.contribs for i in alive):
                return
            contribs = {i: v for i, v in coll.contribs.items() if i in alive}
        del self.collectives[key]
        delay = self.collective_cost(coll)
        done = coll.done

        if self._fast_finish:
            # Deferred-callback completion: the deferral event is posted at
            # the same queue position a Process bootstrap would be, and the
            # timeout is created when it pops — the same (time, seq)
            # trajectory as the generator below, minus its allocations and
            # the process-completion event.
            self.engine.defer(self._finish_collective, done, delay, contribs)
            return

        def finish():
            yield self.engine.timeout(delay)
            done.succeed(contribs)

        self.engine.process(finish(), name=f"{coll.kind}[{key[0]}]")

    def _finish_collective(self, done: Event, delay: float,
                           contribs: dict) -> None:
        self.engine.call_later(delay, done.succeed, contribs)

    # -- failure detection & injection ----------------------------------------
    def register_rank_process(self, world_rank: int, proc: Any) -> None:
        """Associate ``proc`` with ``world_rank`` for targeted rank kills."""
        self._rank_procs[world_rank] = proc

    def lowest_alive_rank(self) -> int:
        """Smallest world rank that has not died (checkpoint writer)."""
        for r in range(self.nranks):
            if r not in self.dead_ranks:
                return r
        raise MPIError("all ranks are dead")

    def kill_rank(self, world_rank: int, reason: str = "") -> None:
        """Kill ``world_rank`` now: fail its process and unblock its peers.

        Peers blocked on the dead rank observe :class:`RankDeadError`
        (pending receives from it are failed, in-flight messages to it are
        dropped); collectives it belonged to complete over the survivors.
        """
        if world_rank in self.dead_ranks:
            return
        if not 0 <= world_rank < self.nranks:
            raise MPIError(f"rank {world_rank} out of range")
        self.dead_ranks.add(world_rank)
        self.pending_calls.pop(world_rank, None)
        exc = RankDeadError(
            world_rank, reason and f"rank {world_rank} died: {reason}")
        proc = self._rank_procs.get(world_rank)
        if proc is not None and proc.is_alive:
            proc.interrupt(exc)
        # Break every receive already posted for the dead peer.
        for box in self._mailboxes:
            box.fail_pending(
                lambda meta: isinstance(meta, dict)
                and meta.get("src") == world_rank,
                RankDeadError(world_rank,
                              f"peer rank {world_rank} died mid-receive"))
        # Collectives missing only this rank's contribution can now finish.
        for key in list(self.collectives):
            self.maybe_finish_collective(key)

    # -- job control ----------------------------------------------------------
    def launch(self, program: Callable[..., Any], *args: Any,
               ranks: Optional[Iterable[int]] = None, **kwargs: Any):
        """Start ``program(comm, *args, **kwargs)`` on each rank.

        ``program`` is a generator function taking the rank's COMM_WORLD view
        first.  Returns the list of rank Processes.
        """
        procs = []
        for r in (range(self.nranks) if ranks is None else ranks):
            comm = self.comm_world(r)
            proc = self.engine.process(program(comm, *args, **kwargs),
                                       name=f"rank{r}")
            self.register_rank_process(r, proc)
            procs.append(proc)
        return procs

    def run(self, procs, until: Optional[float] = None):
        """Run the engine; raise if any rank program failed.

        Distinguishes three abnormal outcomes:

        * :class:`JobKilledError` — the engine was stopped by injection;
        * a rank program's own exception (re-raised, except rank deaths,
          which are an *injected* outcome the survivors already absorbed);
        * :class:`DeadlockError` — the event queue drained while rank
          programs were still blocked; the message lists each stuck rank
          and the MPI call it is waiting in.
        """
        self.engine.run(until=until)
        if self.engine.stop_reason is not None:
            raise JobKilledError(self.engine.stop_reason, self.engine.now)
        # Surface real failures before reporting any consequent deadlock.
        for p in procs:
            if p.triggered and not p.ok and not isinstance(p.value,
                                                           RankDeadError):
                raise p.value
        stuck = [p for p in procs if not p.triggered]
        if stuck:
            blocked = []
            parts = []
            for p in stuck:
                rank = next((r for r, proc in self._rank_procs.items()
                             if proc is p), None)
                call, since = self.pending_calls.get(rank, ("?", None))
                blocked.append((p.name, call, since))
                if since is not None:
                    parts.append(f"{p.name} blocked in {call!r} "
                                 f"since t={since:.6f}s")
                else:
                    parts.append(f"{p.name} not inside an MPI call")
            raise DeadlockError(
                f"deadlock at simulated t={self.engine.now:.6f}s: "
                f"{len(stuck)} of {len(procs)} rank processes never "
                f"completed — {'; '.join(parts)}", blocked=blocked)
        return [p.value for p in procs]
